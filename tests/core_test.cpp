// End-to-end PruneTrainer tests: every policy runs, PruneTrain actually
// shrinks the model during training while learning the task, dynamic
// mini-batch adjustment grows the batch and rescales the LR, SSL's
// two-phase protocol costs more, and run determinism.
#include <gtest/gtest.h>

#include "core/dynamic_batch.h"
#include "core/trainer.h"
#include "cost/memory.h"
#include "models/builders.h"

namespace pt::core {
namespace {

data::SyntheticSpec tiny_data(std::int64_t classes = 4) {
  data::SyntheticSpec spec;
  spec.name = "tiny";
  spec.classes = classes;
  spec.channels = 3;
  spec.height = 8;
  spec.width = 8;
  spec.train_samples = 96;
  spec.test_samples = 64;
  spec.noise = 0.4f;
  spec.max_shift = 1;
  spec.seed = 5;
  return spec;
}

models::ModelConfig tiny_model(std::int64_t classes = 4) {
  models::ModelConfig cfg;
  cfg.image_h = 8;
  cfg.image_w = 8;
  cfg.classes = classes;
  cfg.width_mult = 0.25f;
  cfg.seed = 21;
  return cfg;
}

TrainConfig base_cfg() {
  TrainConfig cfg;
  cfg.epochs = 8;
  cfg.batch_size = 32;
  cfg.base_lr = 0.05f;
  cfg.weight_decay = 1e-4f;
  cfg.reconfig_interval = 3;
  cfg.lasso_ratio = 0.25f;
  return cfg;
}

TEST(PruneTrainer, DensePolicyLearnsTask) {
  auto data = data::SyntheticImageDataset(tiny_data());
  auto net = models::build_resnet_basic(8, tiny_model());
  TrainConfig cfg = base_cfg();
  cfg.policy = PrunePolicy::kDense;
  cfg.epochs = 10;
  PruneTrainer trainer(net, data, cfg);
  const auto result = trainer.run();
  EXPECT_GT(result.final_test_acc, 0.5);  // well above 25% chance
  EXPECT_EQ(result.epochs.size(), 10u);
  EXPECT_EQ(result.layers_removed, 0);
  // Dense training never changes FLOPs.
  EXPECT_DOUBLE_EQ(result.epochs.front().flops_per_sample_inf,
                   result.epochs.back().flops_per_sample_inf);
}

/// Harder data + a wider model: the regime where group-lasso pruning has
/// both redundancy to remove and gradient pressure to resist it.
data::SyntheticSpec pruning_data() {
  data::SyntheticSpec spec = tiny_data(8);
  spec.train_samples = 256;
  spec.test_samples = 128;
  spec.noise = 0.8f;
  spec.max_shift = 2;
  return spec;
}

models::ModelConfig pruning_model() {
  models::ModelConfig cfg = tiny_model(8);
  cfg.width_mult = 0.5f;
  return cfg;
}

TrainConfig pruning_cfg() {
  TrainConfig cfg = base_cfg();
  cfg.policy = PrunePolicy::kPruneTrain;
  cfg.epochs = 30;
  cfg.batch_size = 64;
  cfg.base_lr = 0.1f;
  cfg.lr_milestones = {15, 23};
  cfg.lasso_ratio = 0.3f;
  cfg.lasso_boost = 200.f;  // proxy time compression, see TrainConfig docs
  cfg.reconfig_interval = 5;
  cfg.eval_interval = 5;
  return cfg;
}

TEST(PruneTrainer, PruneTrainShrinksModelDuringTraining) {
  auto data = data::SyntheticImageDataset(pruning_data());
  auto net = models::build_resnet_basic(8, pruning_model());
  TrainConfig cfg = pruning_cfg();
  PruneTrainer trainer(net, data, cfg);
  const auto result = trainer.run();
  EXPECT_GT(result.lambda, 0.f);
  // Channel counts must be non-increasing and strictly smaller by the end.
  for (std::size_t e = 1; e < result.epochs.size(); ++e) {
    EXPECT_LE(result.epochs[e].channels_alive, result.epochs[e - 1].channels_alive);
  }
  EXPECT_LT(result.final_channels, result.epochs.front().channels_alive);
  EXPECT_LT(result.final_inference_flops,
            result.epochs.front().flops_per_sample_inf);
  // Still learns something (above chance).
  EXPECT_GT(result.final_test_acc, 0.3);
}

TEST(PruneTrainer, LassoLossDecreasesUnderRegularization) {
  auto data = data::SyntheticImageDataset(tiny_data());
  auto net = models::build_resnet_basic(8, tiny_model());
  TrainConfig cfg = base_cfg();
  cfg.policy = PrunePolicy::kPruneTrain;
  cfg.epochs = 6;
  // Meaningful shrinkage pressure (without it, BN scale-invariance lets
  // gradient noise *grow* weight norms — see TrainConfig::lasso_boost).
  cfg.lasso_boost = 100.f;
  cfg.reconfig_interval = 100;  // no reconfig: watch pure sparsification
  PruneTrainer trainer(net, data, cfg);
  const auto result = trainer.run();
  EXPECT_LT(result.epochs.back().lasso_loss, result.epochs.front().lasso_loss);
}

TEST(PruneTrainer, SslRunsTwoPhasesAndCostsMore) {
  auto data = data::SyntheticImageDataset(tiny_data());
  auto net_ssl = models::build_resnet_basic(8, tiny_model());
  auto net_pt = models::build_resnet_basic(8, tiny_model());
  TrainConfig cfg = base_cfg();
  cfg.epochs = 6;
  cfg.policy = PrunePolicy::kSSL;
  PruneTrainer ssl(net_ssl, data, cfg);
  const auto r_ssl = ssl.run();
  EXPECT_EQ(r_ssl.epochs.size(), 12u);  // dense phase + sparsify phase

  cfg.policy = PrunePolicy::kPruneTrain;
  PruneTrainer pt(net_pt, data, cfg);
  const auto r_pt = pt.run();
  EXPECT_GT(r_ssl.total_train_flops, 1.5 * r_pt.total_train_flops);
}

TEST(PruneTrainer, OneShotReconfiguresExactlyOnce) {
  auto data = data::SyntheticImageDataset(tiny_data());
  auto net = models::build_resnet_basic(8, tiny_model());
  TrainConfig cfg = base_cfg();
  cfg.policy = PrunePolicy::kOneShot;
  cfg.epochs = 8;
  cfg.one_shot_epoch = 4;
  PruneTrainer trainer(net, data, cfg);
  const auto result = trainer.run();
  std::int64_t reconfigs = 0;
  for (const auto& e : result.epochs) reconfigs += e.reconfigured ? 1 : 0;
  EXPECT_LE(reconfigs, 1);
  // FLOPs before the one-shot epoch are constant (dense).
  EXPECT_DOUBLE_EQ(result.epochs[0].flops_per_sample_inf,
                   result.epochs[2].flops_per_sample_inf);
}

TEST(PruneTrainer, DeterministicAcrossRuns) {
  auto data = data::SyntheticImageDataset(tiny_data());
  auto net1 = models::build_resnet_basic(8, tiny_model());
  auto net2 = models::build_resnet_basic(8, tiny_model());
  TrainConfig cfg = base_cfg();
  cfg.epochs = 5;
  PruneTrainer t1(net1, data, cfg);
  PruneTrainer t2(net2, data, cfg);
  const auto r1 = t1.run();
  const auto r2 = t2.run();
  ASSERT_EQ(r1.epochs.size(), r2.epochs.size());
  for (std::size_t e = 0; e < r1.epochs.size(); ++e) {
    EXPECT_DOUBLE_EQ(r1.epochs[e].train_loss, r2.epochs[e].train_loss);
    EXPECT_EQ(r1.epochs[e].channels_alive, r2.epochs[e].channels_alive);
  }
  EXPECT_DOUBLE_EQ(r1.final_test_acc, r2.final_test_acc);
}

TEST(PruneTrainer, HigherRatioPrunesMore) {
  auto data = data::SyntheticImageDataset(pruning_data());
  auto weak_net = models::build_resnet_basic(8, pruning_model());
  auto strong_net = models::build_resnet_basic(8, pruning_model());
  TrainConfig cfg = pruning_cfg();
  cfg.lasso_ratio = 0.1f;
  PruneTrainer weak(weak_net, data, cfg);
  const auto r_weak = weak.run();
  cfg.lasso_ratio = 0.3f;
  PruneTrainer strong(strong_net, data, cfg);
  const auto r_strong = strong.run();
  EXPECT_LT(r_strong.final_channels, r_weak.final_channels);
  EXPECT_LE(r_strong.total_train_flops, r_weak.total_train_flops);
}

TEST(PruneTrainer, MetricsAreInternallyConsistent) {
  auto data = data::SyntheticImageDataset(tiny_data());
  auto net = models::build_resnet_basic(8, tiny_model());
  TrainConfig cfg = base_cfg();
  cfg.epochs = 4;
  PruneTrainer trainer(net, data, cfg);
  const auto result = trainer.run();
  double flops = 0, bn = 0, comm = 0;
  for (const auto& e : result.epochs) {
    flops += e.epoch_train_flops;
    bn += e.epoch_bn_traffic;
    comm += e.comm_bytes_per_gpu;
    EXPECT_GT(e.memory_bytes, 0);
    EXPECT_GT(e.gpu_time_modeled, 0);
    EXPECT_GE(e.train_acc, 0);
    EXPECT_LE(e.train_acc, 1);
  }
  EXPECT_DOUBLE_EQ(flops, result.total_train_flops);
  EXPECT_DOUBLE_EQ(bn, result.total_bn_traffic);
  EXPECT_DOUBLE_EQ(comm, result.total_comm_bytes);
}

TEST(PruneTrainer, SparsityMonitorRecordsWhenEnabled) {
  auto data = data::SyntheticImageDataset(tiny_data());
  auto net = models::build_resnet_basic(8, tiny_model());
  TrainConfig cfg = base_cfg();
  cfg.epochs = 4;
  cfg.record_sparsity = true;
  PruneTrainer trainer(net, data, cfg);
  trainer.run();
  ASSERT_NE(trainer.sparsity_monitor(), nullptr);
  EXPECT_EQ(trainer.sparsity_monitor()->history()[0].max_abs.size(), 4u);
}

TEST(DynamicBatch, GrowsBatchWhenMemoryAllows) {
  auto net = models::build_resnet_basic(8, tiny_model());
  cost::MemoryModel mem(net, {3, 8, 8});
  DynamicBatchConfig cfg;
  cfg.enabled = true;
  cfg.granularity = 16;
  cfg.max_batch = 256;
  cfg.device_memory_bytes = mem.training_bytes(96);  // fits exactly 96
  DynamicBatchAdjuster adj(cfg);
  const auto a = adj.propose(net, {3, 8, 8}, 32);
  EXPECT_EQ(a.new_batch, 96);
  EXPECT_TRUE(a.changed);
  EXPECT_FLOAT_EQ(a.lr_scale, 3.f);
}

TEST(DynamicBatch, NeverShrinksAndRespectsCap) {
  auto net = models::build_resnet_basic(8, tiny_model());
  DynamicBatchConfig cfg;
  cfg.enabled = true;
  cfg.granularity = 16;
  cfg.max_batch = 64;
  cfg.device_memory_bytes = 1.0;  // nothing fits
  DynamicBatchAdjuster adj(cfg);
  const auto a = adj.propose(net, {3, 8, 8}, 48);
  EXPECT_EQ(a.new_batch, 48);  // unchanged, never below current
  EXPECT_FALSE(a.changed);

  cfg.device_memory_bytes = 1e18;
  DynamicBatchAdjuster adj2(cfg);
  const auto b = adj2.propose(net, {3, 8, 8}, 48);
  EXPECT_EQ(b.new_batch, 64);  // capped
}

TEST(DynamicBatch, DisabledIsIdentity) {
  auto net = models::build_resnet_basic(8, tiny_model());
  DynamicBatchConfig cfg;
  cfg.enabled = false;
  cfg.device_memory_bytes = 1e18;
  DynamicBatchAdjuster adj(cfg);
  const auto a = adj.propose(net, {3, 8, 8}, 32);
  EXPECT_EQ(a.new_batch, 32);
  EXPECT_FALSE(a.changed);
  EXPECT_FLOAT_EQ(a.lr_scale, 1.f);
}

TEST(PruneTrainer, DynamicBatchGrowsDuringPruning) {
  auto data = data::SyntheticImageDataset(tiny_data());
  auto net = models::build_resnet_basic(8, tiny_model());
  cost::MemoryModel mem(net, {3, 8, 8});
  TrainConfig cfg = base_cfg();
  cfg.epochs = 12;
  cfg.lasso_ratio = 0.3f;
  cfg.batch_size = 24;
  cfg.dynamic_batch.enabled = true;
  cfg.dynamic_batch.granularity = 8;
  cfg.dynamic_batch.max_batch = 96;
  // Capacity = initial model at batch 24 (the paper's setup: start at the
  // largest batch that fits; growth headroom comes from pruning).
  cfg.dynamic_batch.device_memory_bytes = mem.training_bytes(24);
  PruneTrainer trainer(net, data, cfg);
  const auto result = trainer.run();
  EXPECT_GE(result.epochs.back().batch_size, result.epochs.front().batch_size);
  // LR scaling rule: whenever the batch grew, lr grew proportionally
  // (up to schedule decay, which is off here).
  for (std::size_t e = 1; e < result.epochs.size(); ++e) {
    const auto& prev = result.epochs[e - 1];
    const auto& cur = result.epochs[e];
    if (cur.batch_size != prev.batch_size) {
      EXPECT_NEAR(cur.lr / prev.lr,
                  double(cur.batch_size) / double(prev.batch_size), 1e-5);
    }
  }
}

TEST(ToString, PolicyNames) {
  EXPECT_EQ(to_string(PrunePolicy::kDense), "Dense");
  EXPECT_EQ(to_string(PrunePolicy::kPruneTrain), "PruneTrain");
  EXPECT_EQ(to_string(PrunePolicy::kSSL), "SSL");
  EXPECT_EQ(to_string(PrunePolicy::kOneShot), "OneShot");
}

// ---------------------------------------------------------------------------
// TrainConfig strategy validation: legacy lasso fields map into the
// group_lasso parameters, contradictory combinations fail loudly, and
// non-lasso strategies reject the group-lasso-only protocol knobs.

TEST(TrainConfigStrategy, LegacyFieldsMirrorIntoGroupLassoParams) {
  TrainConfig cfg = base_cfg();
  cfg.lasso_ratio = 0.3f;
  cfg.lasso_boost = 42.f;
  cfg.proximal_update = false;
  const auto p = cfg.resolved_strategy_params();
  EXPECT_FLOAT_EQ(std::stof(p.at("ratio")), 0.3f);
  EXPECT_FLOAT_EQ(std::stof(p.at("boost")), 42.f);
  EXPECT_EQ(p.at("proximal"), "false");
  EXPECT_EQ(p.at("size_normalized"), "false");
  cfg.validate();  // and the resolved set must create cleanly
}

TEST(TrainConfigStrategy, AgreeingSpellingsCoexist) {
  TrainConfig cfg = base_cfg();
  cfg.lasso_ratio = 0.3f;
  cfg.strategy_params["ratio"] = "0.3";
  EXPECT_NO_THROW(cfg.validate());
}

TEST(TrainConfigStrategy, ContradictorySpellingsThrow) {
  TrainConfig cfg = base_cfg();
  cfg.lasso_ratio = 0.3f;
  cfg.strategy_params["ratio"] = "0.4";
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  TrainConfig cfg2 = base_cfg();
  cfg2.proximal_update = false;
  cfg2.strategy_params["proximal"] = "true";
  EXPECT_THROW(cfg2.validate(), std::invalid_argument);
}

TEST(TrainConfigStrategy, LassoKnobsRejectedForOtherStrategies) {
  TrainConfig cfg = base_cfg();
  cfg.strategy = "dst";
  cfg.lasso_ratio = 0.3f;  // moved off its default → meaningless for dst
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  TrainConfig ok = base_cfg();
  ok.strategy = "dst";
  ok.lasso_ratio = TrainConfig{}.lasso_ratio;
  EXPECT_NO_THROW(ok.validate());
}

TEST(TrainConfigStrategy, UnknownStrategyOrParamThrows) {
  TrainConfig cfg = base_cfg();
  cfg.strategy = "no_such_strategy";
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  TrainConfig cfg2 = base_cfg();
  cfg2.strategy = "dsd";
  cfg2.lasso_ratio = TrainConfig{}.lasso_ratio;
  cfg2.strategy_params["bogus"] = "1";
  EXPECT_THROW(cfg2.validate(), std::invalid_argument);
}

TEST(TrainConfigStrategy, ProtocolPoliciesRequireGroupLasso) {
  TrainConfig cfg = base_cfg();
  cfg.policy = PrunePolicy::kSSL;
  cfg.strategy = "channel_prop";
  cfg.lasso_ratio = TrainConfig{}.lasso_ratio;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  TrainConfig cfg2 = base_cfg();
  cfg2.policy = PrunePolicy::kOneShot;
  cfg2.one_shot_epoch = 2;
  cfg2.strategy = "dsd";
  cfg2.lasso_ratio = TrainConfig{}.lasso_ratio;
  EXPECT_THROW(cfg2.validate(), std::invalid_argument);
}

TEST(TrainConfigStrategy, DsdRejectsLegacyFineTuneEpochs) {
  TrainConfig cfg = base_cfg();
  cfg.strategy = "dsd";
  cfg.lasso_ratio = TrainConfig{}.lasso_ratio;
  cfg.fine_tune_epochs = 2;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(TrainConfigCodec, UnknownCodecOrParamThrows) {
  TrainConfig cfg = base_cfg();
  cfg.replicas = 2;
  cfg.codec = "no_such_codec";
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  // A valid codec name with a parameter belonging to a different codec.
  TrainConfig cfg2 = base_cfg();
  cfg2.replicas = 2;
  cfg2.codec = "dense";
  cfg2.codec_params["threshold_scale"] = "1.5";
  EXPECT_THROW(cfg2.validate(), std::invalid_argument);

  TrainConfig cfg3 = base_cfg();
  cfg3.replicas = 2;
  cfg3.codec = "twobit";
  cfg3.codec_params["threshold_scale"] = "not_a_number";
  EXPECT_THROW(cfg3.validate(), std::invalid_argument);
}

TEST(TrainConfigCodec, CompressionRequiresReplicas) {
  // Gradient compression only applies to the simulated allreduce; a
  // single-device run with a non-dense codec is a configuration error.
  TrainConfig cfg = base_cfg();
  cfg.replicas = 1;
  cfg.codec = "twobit";
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  TrainConfig ok = base_cfg();
  ok.replicas = 1;
  ok.codec = "dense";
  EXPECT_NO_THROW(ok.validate());

  TrainConfig ok2 = base_cfg();
  ok2.replicas = 2;
  ok2.codec = "twobit";
  ok2.codec_params["threshold_scale"] = "1.5";
  EXPECT_NO_THROW(ok2.validate());
}

TEST(PruneTrainer, GroupLassoStrategyParamsMatchLegacySpelling) {
  // The same run expressed through the legacy lasso fields and through
  // strategy_params must be bitwise identical.
  auto data = data::SyntheticImageDataset(tiny_data());

  TrainConfig legacy = base_cfg();
  legacy.policy = PrunePolicy::kPruneTrain;
  legacy.epochs = 4;
  legacy.lasso_ratio = 0.3f;
  legacy.lasso_boost = 500.f;
  auto net_legacy = models::build_resnet_basic(8, tiny_model());
  PruneTrainer t_legacy(net_legacy, data, legacy);
  const TrainResult r_legacy = t_legacy.run();

  TrainConfig params = base_cfg();
  params.policy = PrunePolicy::kPruneTrain;
  params.epochs = 4;
  params.lasso_ratio = TrainConfig{}.lasso_ratio;
  params.strategy_params = {{"ratio", "0.3"}, {"boost", "500"}};
  auto net_params = models::build_resnet_basic(8, tiny_model());
  PruneTrainer t_params(net_params, data, params);
  const TrainResult r_params = t_params.run();

  ASSERT_EQ(r_params.epochs.size(), r_legacy.epochs.size());
  for (std::size_t e = 0; e < r_legacy.epochs.size(); ++e) {
    EXPECT_DOUBLE_EQ(r_params.epochs[e].train_loss,
                     r_legacy.epochs[e].train_loss);
    EXPECT_EQ(r_params.epochs[e].channels_alive,
              r_legacy.epochs[e].channels_alive);
  }
  EXPECT_FLOAT_EQ(r_params.lambda, r_legacy.lambda);
  EXPECT_DOUBLE_EQ(r_params.final_test_acc, r_legacy.final_test_acc);
}

}  // namespace
}  // namespace pt::core
