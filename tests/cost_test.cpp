// Cost-model tests: exact FLOP formulas for known layers, shape inference
// through residual graphs, memory-context accounting and the max-batch
// search, roofline monotonicity, and allreduce algebra.
#include <gtest/gtest.h>

#include "cost/comm.h"
#include "cost/device.h"
#include "cost/flops.h"
#include "cost/memory.h"
#include "models/builders.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/pool.h"

namespace pt::cost {
namespace {

models::ModelConfig tiny_cfg() {
  models::ModelConfig cfg;
  cfg.image_h = 8;
  cfg.image_w = 8;
  cfg.classes = 4;
  cfg.width_mult = 0.25f;
  return cfg;
}

TEST(InferShapes, PropagatesThroughResNet) {
  auto cfg = tiny_cfg();
  auto net = models::build_resnet_basic(20, cfg);
  const auto shapes = infer_shapes(net, Shape{2, 3, 8, 8});
  EXPECT_EQ(shapes[static_cast<std::size_t>(net.output())], (Shape{2, 4}));
  // Stem conv output: [2, 4, 8, 8] at width 0.25 (16 -> 4).
  EXPECT_EQ(shapes[static_cast<std::size_t>(net.info.first_conv)],
            (Shape{2, 4, 8, 8}));
}

TEST(FlopsModel, ConvFormulaExact) {
  // Single conv network: FLOPs must equal 2*K*C*R*S*Ho*Wo.
  graph::Network net;
  Rng rng(1);
  const int input = net.add_input();
  auto conv = std::make_shared<nn::Conv2d>(3, 8, 3, 1, 1, rng);
  const int c = net.add_layer(conv, input);
  net.set_output(c);
  FlopsModel fm(net, {3, 10, 10});
  EXPECT_DOUBLE_EQ(fm.inference_flops(), 2.0 * 8 * 3 * 3 * 3 * 10 * 10);
  // Training = 3x inference for a conv (dW + dX each cost one GEMM).
  EXPECT_DOUBLE_EQ(fm.training_flops(), 3.0 * fm.inference_flops());
}

TEST(FlopsModel, StridedConvUsesOutputExtent) {
  graph::Network net;
  Rng rng(2);
  const int input = net.add_input();
  auto conv = std::make_shared<nn::Conv2d>(4, 4, 3, 2, 1, rng);
  net.set_output(net.add_layer(conv, input));
  FlopsModel fm(net, {4, 8, 8});
  EXPECT_DOUBLE_EQ(fm.inference_flops(), 2.0 * 4 * 4 * 3 * 3 * 4 * 4);
}

TEST(FlopsModel, LinearFormulaExact) {
  graph::Network net;
  Rng rng(3);
  const int input = net.add_input();
  auto gap = std::make_shared<nn::GlobalAvgPool>();
  const int g = net.add_layer(gap, input);
  auto fc = std::make_shared<nn::Linear>(16, 10, rng);
  net.set_output(net.add_layer(fc, g));
  FlopsModel fm(net, {16, 4, 4});
  // GAP: 16*4*4 FLOPs; FC: 2*16*10.
  EXPECT_DOUBLE_EQ(fm.inference_flops(), 16 * 4 * 4 + 2.0 * 16 * 10);
}

TEST(FlopsModel, PrunedModelCostsLess) {
  auto cfg = tiny_cfg();
  auto net = models::build_resnet_basic(20, cfg);
  FlopsModel before(net, {3, 8, 8});
  // Shrink one conv by hand.
  const auto convs = net.nodes_of_type<nn::Conv2d>();
  auto& conv = net.layer_as<nn::Conv2d>(convs[1]);
  std::vector<std::int64_t> keep_in, keep_out;
  for (std::int64_t i = 0; i < conv.in_channels(); ++i) keep_in.push_back(i);
  for (std::int64_t i = 0; i < conv.out_channels() / 2; ++i) keep_out.push_back(i);
  // Also shrink whatever consumes it, to keep the graph consistent? Not
  // needed for the FLOPs model itself; use a fresh single-layer graph.
  graph::Network single;
  Rng rng(4);
  const int input = single.add_input();
  auto c2 = std::make_shared<nn::Conv2d>(8, 8, 3, 1, 1, rng);
  const int cid = single.add_layer(c2, input);
  single.set_output(cid);
  FlopsModel fa(single, {8, 8, 8});
  single.layer_as<nn::Conv2d>(cid).shrink({0, 1, 2, 3}, {0, 1, 2, 3});
  FlopsModel fb(single, {8, 8, 8});
  EXPECT_DOUBLE_EQ(fb.inference_flops(), fa.inference_flops() / 4.0);
  (void)before;
}

TEST(FlopsModel, LayerBreakdownSumsToTotal) {
  auto net = models::build_resnet_basic(20, tiny_cfg());
  FlopsModel fm(net, {3, 8, 8});
  double fwd = 0, bwd = 0;
  for (const auto& l : fm.layers()) {
    fwd += l.forward;
    bwd += l.backward;
  }
  EXPECT_DOUBLE_EQ(fwd, fm.inference_flops());
  EXPECT_DOUBLE_EQ(fwd + bwd, fm.training_flops());
}

TEST(MemoryModel, ActivationsScaleWithBatch) {
  auto net = models::build_resnet_basic(20, tiny_cfg());
  MemoryModel mm(net, {3, 8, 8});
  const double b1 = mm.training_bytes(1);
  const double b2 = mm.training_bytes(2);
  const double b4 = mm.training_bytes(4);
  // Per-sample increments are exactly linear in activations.
  EXPECT_DOUBLE_EQ(b4 - b2, 2.0 * (b2 - b1));
  EXPECT_DOUBLE_EQ(b2 - b1, mm.breakdown().activations_per_sample);
  EXPECT_GT(mm.breakdown().parameters, 0);
  EXPECT_DOUBLE_EQ(mm.breakdown().optimizer_state, 2 * mm.breakdown().parameters);
}

TEST(MemoryModel, MaxBatchRespectsCapacity) {
  auto net = models::build_resnet_basic(20, tiny_cfg());
  MemoryModel mm(net, {3, 8, 8});
  const double cap = mm.training_bytes(64) + 1.0;
  const std::int64_t b = mm.max_batch(cap, 16, 512);
  EXPECT_EQ(b, 64);
  // Tiny capacity still returns the granularity floor.
  EXPECT_EQ(mm.max_batch(1.0, 16, 512), 16);
  // Huge capacity clamps at max_batch.
  EXPECT_EQ(mm.max_batch(1e18, 16, 128), 128);
}

TEST(MemoryModel, BnTrafficCountsOnlyBnLayers) {
  graph::Network net;
  Rng rng(5);
  const int input = net.add_input();
  auto conv = std::make_shared<nn::Conv2d>(2, 4, 3, 1, 1, rng);
  const int c = net.add_layer(conv, input);
  auto bn = std::make_shared<nn::BatchNorm2d>(4);
  const int b = net.add_layer(bn, c);
  net.set_output(b);
  MemoryModel mm(net, {2, 6, 6});
  // BN input is [1, 4, 6, 6] = 144 elements; 7 passes * 4 bytes.
  EXPECT_DOUBLE_EQ(mm.bn_traffic_per_sample(), 7.0 * 144 * 4);
}

TEST(MemoryModel, PrunedModelNeedsLessMemory) {
  auto cfg = tiny_cfg();
  cfg.width_mult = 0.5f;
  auto big = models::build_resnet_basic(20, cfg);
  cfg.width_mult = 0.25f;
  auto small = models::build_resnet_basic(20, cfg);
  MemoryModel mb(big, {3, 8, 8});
  MemoryModel ms(small, {3, 8, 8});
  EXPECT_LT(ms.training_bytes(32), mb.training_bytes(32));
}

TEST(DeviceModel, MoreFlopsTakeLonger) {
  auto cfg = tiny_cfg();
  cfg.width_mult = 0.5f;
  auto big = models::build_resnet_basic(20, cfg);
  cfg.width_mult = 0.25f;
  auto small = models::build_resnet_basic(20, cfg);
  DeviceModel dev(DeviceSpec::titan_xp());
  EXPECT_GT(dev.training_time(big, {3, 8, 8}, 32),
            dev.training_time(small, {3, 8, 8}, 32));
}

TEST(DeviceModel, UtilizationPenalizesSmallLayers) {
  // Halving FLOPs must NOT halve modeled time (reduced parallelism lowers
  // utilization) — the paper's central measured-vs-FLOPs gap.
  graph::Network a, b;
  Rng rng(6);
  const int ia = a.add_input();
  a.set_output(a.add_layer(std::make_shared<nn::Conv2d>(32, 32, 3, 1, 1, rng), ia));
  const int ib = b.add_input();
  b.set_output(b.add_layer(std::make_shared<nn::Conv2d>(32, 16, 3, 1, 1, rng), ib));
  DeviceModel dev(DeviceSpec::titan_xp());
  const double ta = dev.training_time(a, {32, 8, 8}, 16);
  const double tb = dev.training_time(b, {32, 8, 8}, 16);
  EXPECT_LT(tb, ta);
  EXPECT_GT(tb, ta / 2.0);  // speedup < FLOPs saving
}

TEST(DeviceModel, V100FasterThan1080Ti) {
  auto net = models::build_resnet_basic(20, tiny_cfg());
  DeviceModel v100(DeviceSpec::v100());
  DeviceModel ti(DeviceSpec::gtx_1080ti());
  EXPECT_LT(v100.training_time(net, {3, 8, 8}, 32),
            ti.training_time(net, {3, 8, 8}, 32));
}

TEST(DeviceModel, TrainingCostsMoreThanInference) {
  auto net = models::build_resnet_basic(20, tiny_cfg());
  DeviceModel dev(DeviceSpec::titan_xp());
  EXPECT_GT(dev.training_time(net, {3, 8, 8}, 32),
            dev.inference_time(net, {3, 8, 8}, 32));
}

namespace {
CommQuery query(double bytes, int members = 0, CommCodec codec = CommCodec::kDense,
                double live = 1.0, std::int64_t updates = 1) {
  CommQuery q;
  q.model_bytes = bytes;
  q.members = members;
  q.codec = codec;
  q.live_fraction = live;
  q.updates = updates;
  return q;
}
}  // namespace

TEST(CommModel, RingBytesFormula) {
  CommSpec spec;
  spec.gpus = 4;
  CommModel cm(spec);
  EXPECT_DOUBLE_EQ(cm.cost(query(100.0)).wire_bytes, 2.0 * 3.0 / 4.0 * 100.0);
  CommSpec one;
  one.gpus = 1;
  EXPECT_DOUBLE_EQ(CommModel(one).cost(query(100.0)).wire_bytes, 0.0);
}

TEST(CommModel, TimeScalesWithBytesAndLatency) {
  CommSpec spec;
  spec.gpus = 4;
  spec.link_bandwidth = 1e9;
  spec.latency = 1e-6;
  CommModel cm(spec);
  const double t1 = cm.cost(query(1e6)).ring_time;
  const double t2 = cm.cost(query(2e6)).ring_time;
  EXPECT_GT(t2, t1);
  EXPECT_LT(t2, 2 * t1);  // latency term does not scale
}

TEST(CommModel, HierarchicalBeatsFlatRingAtScale) {
  CommSpec spec;
  spec.gpus = 16;
  spec.hierarchy_group = 4;
  spec.link_bandwidth = 10e9;
  spec.latency = 10e-6;
  CommModel cm(spec);
  // With non-trivial latency, the two-level reduction wins for small
  // buffers (fewer serialized hops).
  const CommCost c = cm.cost(query(1e5));
  EXPECT_LT(c.hierarchical_time, c.ring_time);
}

TEST(CommModel, CostScalesWithUpdates) {
  CommSpec spec;
  spec.gpus = 4;
  CommModel cm(spec);
  EXPECT_DOUBLE_EQ(cm.cost(query(100.0, 0, CommCodec::kDense, 1.0, 10)).wire_bytes,
                   10 * cm.cost(query(100.0)).wire_bytes);
  EXPECT_DOUBLE_EQ(
      cm.cost(query(1e6, 0, CommCodec::kDense, 1.0, 8)).hierarchical_time,
      8 * cm.cost(query(1e6)).hierarchical_time);
}

TEST(CommModel, MemberCountsHandleDegenerateRings) {
  CommSpec spec;
  spec.gpus = 4;
  spec.link_bandwidth = 1e9;
  spec.latency = 1e-6;
  CommModel cm(spec);

  // A "ring" of one exchanges nothing — no bytes, no time.
  EXPECT_DOUBLE_EQ(cm.cost(query(1e6, 1)).wire_bytes, 0.0);
  EXPECT_DOUBLE_EQ(cm.cost(query(1e6, 1)).ring_time, 0.0);
  EXPECT_DOUBLE_EQ(cm.cost(query(1e6, 1)).hierarchical_time, 0.0);

  // Two members is an honest full exchange (2*(P-1)/P = 1x model bytes,
  // two pipeline steps of a half-model chunk) — not a free lunch and not a
  // 4-GPU ring either.
  EXPECT_DOUBLE_EQ(cm.cost(query(1e6, 2)).wire_bytes, 1e6);
  EXPECT_DOUBLE_EQ(cm.cost(query(1e6, 2)).ring_time,
                   2.0 * (spec.latency + 1e6 / 2.0 / spec.link_bandwidth));

  // members = 0 means "the spec's own GPU count".
  EXPECT_DOUBLE_EQ(cm.cost(query(1e6, 4)).wire_bytes,
                   cm.cost(query(1e6)).wire_bytes);
  EXPECT_DOUBLE_EQ(cm.cost(query(1e6, 4)).ring_time,
                   cm.cost(query(1e6)).ring_time);
  EXPECT_DOUBLE_EQ(cm.cost(query(1e6, 4)).hierarchical_time,
                   cm.cost(query(1e6)).hierarchical_time);

  // Fewer live members than the configured ring must cost less.
  EXPECT_LT(cm.cost(query(1e6, 3)).wire_bytes, cm.cost(query(1e6, 4)).wire_bytes);
  EXPECT_LT(cm.cost(query(1e6, 2)).ring_time, cm.cost(query(1e6, 4)).ring_time);
}

TEST(CommModel, HierarchicalClampsGroupToLiveMembers) {
  CommSpec spec;
  spec.gpus = 16;
  spec.hierarchy_group = 8;
  spec.link_bandwidth = 10e9;
  spec.latency = 10e-6;
  CommModel cm(spec);
  // With only 3 live members the intra-group ring runs at 3, not 8: the
  // modeled time must match a flat spec of that size, and shrink further
  // as membership shrinks.
  EXPECT_GT(cm.cost(query(1e6, 3)).hierarchical_time, 0.0);
  EXPECT_LT(cm.cost(query(1e6, 3)).hierarchical_time,
            cm.cost(query(1e6, 16)).hierarchical_time);
  EXPECT_LT(cm.cost(query(1e6, 2)).hierarchical_time,
            cm.cost(query(1e6, 3)).hierarchical_time);
}

TEST(CommModel, CompressionFactorsMultiplyIntoVolume) {
  // Fig. 11's multiplicative framing: pruning (live fraction), batch
  // growth (fewer updates), and quantization each scale the same wire
  // volume, independently.
  EXPECT_DOUBLE_EQ(CommModel::compression_factor(CommCodec::kDense, 0.3), 1.0);
  EXPECT_DOUBLE_EQ(CommModel::compression_factor(CommCodec::kTwoBit, 0.3),
                   2.0 / 32.0);
  EXPECT_DOUBLE_EQ(
      CommModel::compression_factor(CommCodec::kLiveChannel, 0.3), 0.3);
  // Out-of-range live fractions clamp instead of inflating the volume.
  EXPECT_DOUBLE_EQ(
      CommModel::compression_factor(CommCodec::kLiveChannel, 1.7), 1.0);

  CommSpec spec;
  spec.gpus = 4;
  CommModel cm(spec);
  const double dense = cm.cost(query(1e6)).wire_bytes;
  const double twobit =
      cm.cost(query(1e6, 0, CommCodec::kTwoBit)).wire_bytes;
  const double live =
      cm.cost(query(1e6, 0, CommCodec::kLiveChannel, 0.25)).wire_bytes;
  EXPECT_DOUBLE_EQ(twobit, dense * 2.0 / 32.0);
  EXPECT_DOUBLE_EQ(live, dense * 0.25);
  // Compression shrinks time as well as bytes (latency term survives).
  EXPECT_LT(cm.cost(query(1e6, 0, CommCodec::kTwoBit)).ring_time,
            cm.cost(query(1e6)).ring_time);
}

TEST(DeviceSpecs, PresetsAreOrdered) {
  EXPECT_GT(DeviceSpec::v100().mem_bandwidth, DeviceSpec::gtx_1080ti().mem_bandwidth);
  EXPECT_GT(DeviceSpec::v100().peak_flops, DeviceSpec::cpu().peak_flops);
}

}  // namespace
}  // namespace pt::cost
