// Synthetic dataset and loader tests: determinism, class structure (the
// task must be learnable), shuffling, batch-size edge cases, and the
// resizable batches that dynamic mini-batch adjustment depends on.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "data/loader.h"
#include "data/synthetic.h"

namespace pt::data {
namespace {

TEST(SyntheticDataset, ShapesMatchSpec) {
  SyntheticSpec spec;
  spec.classes = 4;
  spec.channels = 3;
  spec.height = 8;
  spec.width = 8;
  spec.train_samples = 32;
  spec.test_samples = 16;
  SyntheticImageDataset ds(spec);
  EXPECT_EQ(ds.train_images().shape(), (Shape{32, 3, 8, 8}));
  EXPECT_EQ(ds.test_images().shape(), (Shape{16, 3, 8, 8}));
  EXPECT_EQ(ds.train_labels().size(), 32u);
}

TEST(SyntheticDataset, DeterministicForSameSeed) {
  SyntheticSpec spec = SyntheticSpec::cifar10_like();
  spec.train_samples = 16;
  spec.test_samples = 8;
  SyntheticImageDataset a(spec), b(spec);
  for (std::int64_t i = 0; i < a.train_images().numel(); ++i) {
    ASSERT_EQ(a.train_images().data()[i], b.train_images().data()[i]);
  }
  EXPECT_EQ(a.train_labels(), b.train_labels());
}

TEST(SyntheticDataset, DifferentSeedsDiffer) {
  SyntheticSpec spec = SyntheticSpec::cifar10_like();
  spec.train_samples = 16;
  SyntheticImageDataset a(spec);
  spec.seed += 1;
  SyntheticImageDataset b(spec);
  bool any_diff = false;
  for (std::int64_t i = 0; i < a.train_images().numel() && !any_diff; ++i) {
    any_diff = a.train_images().data()[i] != b.train_images().data()[i];
  }
  EXPECT_TRUE(any_diff);
}

TEST(SyntheticDataset, LabelsInRange) {
  SyntheticSpec spec = SyntheticSpec::cifar100_like();
  spec.train_samples = 64;
  SyntheticImageDataset ds(spec);
  for (auto l : ds.train_labels()) {
    EXPECT_GE(l, 0);
    EXPECT_LT(l, spec.classes);
  }
}

TEST(SyntheticDataset, AllClassesRepresented) {
  SyntheticSpec spec = SyntheticSpec::cifar10_like();
  spec.train_samples = 512;
  SyntheticImageDataset ds(spec);
  std::set<std::int64_t> seen(ds.train_labels().begin(), ds.train_labels().end());
  EXPECT_EQ(static_cast<std::int64_t>(seen.size()), spec.classes);
}

TEST(SyntheticDataset, ClassStructureIsLearnable) {
  // Same-class samples must be closer (on average) than cross-class samples;
  // otherwise no model could learn the task.
  SyntheticSpec spec = SyntheticSpec::cifar10_like();
  spec.classes = 4;
  spec.train_samples = 128;
  spec.max_shift = 0;  // compare unshifted templates directly
  SyntheticImageDataset ds(spec);
  const std::int64_t len = spec.channels * spec.height * spec.width;
  double same = 0, cross = 0;
  std::int64_t same_n = 0, cross_n = 0;
  for (std::int64_t i = 0; i < 40; ++i) {
    for (std::int64_t j = i + 1; j < 40; ++j) {
      double d = 0;
      for (std::int64_t q = 0; q < len; ++q) {
        const double diff = ds.train_images().data()[i * len + q] -
                            ds.train_images().data()[j * len + q];
        d += diff * diff;
      }
      if (ds.train_labels()[size_t(i)] == ds.train_labels()[size_t(j)]) {
        same += d;
        ++same_n;
      } else {
        cross += d;
        ++cross_n;
      }
    }
  }
  ASSERT_GT(same_n, 0);
  ASSERT_GT(cross_n, 0);
  EXPECT_LT(same / same_n, cross / cross_n);
}

TEST(SyntheticDataset, GatherTrainCopiesRows) {
  SyntheticSpec spec = SyntheticSpec::cifar10_like();
  spec.train_samples = 8;
  SyntheticImageDataset ds(spec);
  Tensor batch = ds.gather_train({3, 0});
  const std::int64_t len = spec.channels * spec.height * spec.width;
  for (std::int64_t q = 0; q < len; ++q) {
    EXPECT_EQ(batch.data()[q], ds.train_images().data()[3 * len + q]);
    EXPECT_EQ(batch.data()[len + q], ds.train_images().data()[q]);
  }
}

TEST(Presets, HaveDistinctGeometry) {
  const auto c10 = SyntheticSpec::cifar10_like();
  const auto c100 = SyntheticSpec::cifar100_like();
  const auto inet = SyntheticSpec::imagenet_like();
  EXPECT_LT(c10.classes, c100.classes);
  EXPECT_LT(c10.height, inet.height);
  EXPECT_GT(c100.train_samples, c10.train_samples);
}

TEST(DataLoader, CoversEverySampleOncePerEpoch) {
  SyntheticSpec spec = SyntheticSpec::cifar10_like();
  spec.train_samples = 50;
  SyntheticImageDataset ds(spec);
  DataLoader loader(ds, 1);
  loader.begin_epoch();
  std::int64_t total = 0;
  std::multiset<std::int64_t> labels_seen;
  while (loader.has_next()) {
    Batch b = loader.next(16);
    total += b.size();
    for (auto l : b.labels) labels_seen.insert(l);
  }
  EXPECT_EQ(total, 50);
  std::multiset<std::int64_t> expected(ds.train_labels().begin(),
                                       ds.train_labels().end());
  EXPECT_EQ(labels_seen, expected);
}

TEST(DataLoader, LastBatchMayBeShort) {
  SyntheticSpec spec = SyntheticSpec::cifar10_like();
  spec.train_samples = 10;
  SyntheticImageDataset ds(spec);
  DataLoader loader(ds, 2);
  loader.begin_epoch();
  Batch b1 = loader.next(8);
  Batch b2 = loader.next(8);
  EXPECT_EQ(b1.size(), 8);
  EXPECT_EQ(b2.size(), 2);
  EXPECT_FALSE(loader.has_next());
}

TEST(DataLoader, ShufflesBetweenEpochs) {
  SyntheticSpec spec = SyntheticSpec::cifar10_like();
  spec.train_samples = 64;
  SyntheticImageDataset ds(spec);
  DataLoader loader(ds, 3);
  loader.begin_epoch();
  Batch e1 = loader.next(64);
  loader.begin_epoch();
  Batch e2 = loader.next(64);
  EXPECT_NE(e1.labels, e2.labels);  // overwhelmingly likely under any shuffle
}

TEST(DataLoader, BatchSizeCanGrowMidStream) {
  // Dynamic mini-batch adjustment grows the batch between epochs; the
  // loader must serve whatever size is asked per call.
  SyntheticSpec spec = SyntheticSpec::cifar10_like();
  spec.train_samples = 48;
  SyntheticImageDataset ds(spec);
  DataLoader loader(ds, 4);
  loader.begin_epoch();
  EXPECT_EQ(loader.next(16).size(), 16);
  EXPECT_EQ(loader.next(32).size(), 32);
  EXPECT_FALSE(loader.has_next());
}

TEST(DataLoader, IterationsPerEpochRoundsUp) {
  SyntheticSpec spec = SyntheticSpec::cifar10_like();
  spec.train_samples = 100;
  SyntheticImageDataset ds(spec);
  DataLoader loader(ds, 5);
  EXPECT_EQ(loader.iterations_per_epoch(32), 4);
  EXPECT_EQ(loader.iterations_per_epoch(50), 2);
  EXPECT_EQ(loader.iterations_per_epoch(100), 1);
  EXPECT_EQ(loader.iterations_per_epoch(128), 1);
}

TEST(DataLoader, DeterministicShufflePerSeed) {
  SyntheticSpec spec = SyntheticSpec::cifar10_like();
  spec.train_samples = 32;
  SyntheticImageDataset ds(spec);
  DataLoader a(ds, 7), b(ds, 7);
  a.begin_epoch();
  b.begin_epoch();
  EXPECT_EQ(a.next(32).labels, b.next(32).labels);
}

}  // namespace
}  // namespace pt::data
