// Data-parallel cluster tests: the defining property (synchronous data
// parallelism == single-device training on the full batch, for BN-free
// models), replica consistency, allreduce arithmetic, and comm accounting.
//
// The elastic half (ISSUE 5) adds the membership state machine, the bitwise
// determinism contract (injected kill == statically scheduled departure),
// kill-before/after-reconfiguration consistency, quorum-loss abort into the
// guardian, and checkpointed rejoin with a stale topology.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cmath>
#include <filesystem>
#include <string>
#include <vector>

#include "ckpt/checkpoint.h"
#include "core/trainer.h"
#include "dist/allreduce.h"
#include "dist/cluster.h"
#include "dist/codec_zoo.h"
#include "dist/elastic.h"
#include "dist/membership.h"
#include "models/builders.h"
#include "robust/fault.h"
#include "robust/recovery.h"
#include "prune/reconfigure.h"
#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/pool.h"

namespace pt::dist {
namespace {

/// BN-free model so shard statistics cannot diverge from full-batch math.
graph::Network make_bnfree_net(std::uint64_t seed) {
  graph::Network net;
  Rng rng(seed);
  const int input = net.add_input();
  auto c1 = std::make_shared<nn::Conv2d>(2, 6, 3, 1, 1, rng);
  const int n1 = net.add_layer(c1, input);
  auto r1 = std::make_shared<nn::ReLU>();
  const int n2 = net.add_layer(r1, n1);
  auto gap = std::make_shared<nn::GlobalAvgPool>();
  const int n3 = net.add_layer(gap, n2);
  auto fc = std::make_shared<nn::Linear>(6, 3, rng);
  net.set_output(net.add_layer(fc, n3));
  return net;
}

data::Batch make_batch(std::int64_t n, std::uint64_t seed) {
  Rng rng(seed);
  data::Batch b;
  b.images = Tensor::randn({n, 2, 5, 5}, rng);
  for (std::int64_t i = 0; i < n; ++i) {
    b.labels.push_back(static_cast<std::int64_t>(rng.uniform_int(3)));
  }
  return b;
}

cost::CommSpec spec_for(int gpus) {
  cost::CommSpec s;
  s.gpus = gpus;
  return s;
}

Cluster make_cluster(int replicas, std::uint64_t seed = 42) {
  std::vector<graph::Network> nets;
  for (int i = 0; i < replicas; ++i) nets.push_back(make_bnfree_net(seed));
  return Cluster(std::move(nets), spec_for(replicas));
}

TEST(Cluster, RejectsMismatchedCommSpec) {
  std::vector<graph::Network> nets;
  nets.push_back(make_bnfree_net(1));
  EXPECT_THROW(Cluster(std::move(nets), spec_for(4)), std::invalid_argument);
}

TEST(Cluster, StepMatchesSingleDeviceTraining) {
  // 4-way data parallelism on a divisible batch must produce the same
  // weights as one device with the full batch.
  Cluster cluster = make_cluster(4, 7);
  graph::Network solo = make_bnfree_net(7);
  data::Batch batch = make_batch(16, 3);

  optim::SGD opt_cluster(0.1f, 0.9f);
  optim::SGD opt_solo(0.1f, 0.9f);
  for (int step = 0; step < 3; ++step) {
    cluster.step(batch, opt_cluster);
    nn::SoftmaxCrossEntropy loss;
    Tensor out = solo.forward(batch.images, true);
    loss.forward(out, batch.labels);
    solo.zero_grad();
    solo.backward(loss.backward());
    opt_solo.step(solo.params());
  }
  auto pc = cluster.replica(0).params();
  auto ps = solo.params();
  ASSERT_EQ(pc.size(), ps.size());
  for (std::size_t i = 0; i < pc.size(); ++i) {
    for (std::int64_t q = 0; q < pc[i]->value.numel(); ++q) {
      EXPECT_NEAR(pc[i]->value.data()[q], ps[i]->value.data()[q], 1e-5f)
          << "param " << i << " elem " << q;
    }
  }
}

TEST(Cluster, ReplicasStayIdentical) {
  Cluster cluster = make_cluster(3, 9);
  optim::SGD opt(0.05f, 0.9f);
  for (int step = 0; step < 4; ++step) {
    cluster.step(make_batch(9 + step, 100 + step), opt);  // uneven shards too
  }
  auto p0 = cluster.replica(0).params();
  for (int r = 1; r < cluster.size(); ++r) {
    auto pr = cluster.replica(r).params();
    for (std::size_t i = 0; i < p0.size(); ++i) {
      for (std::int64_t q = 0; q < p0[i]->value.numel(); ++q) {
        ASSERT_EQ(p0[i]->value.data()[q], pr[i]->value.data()[q]);
      }
    }
  }
}

TEST(Cluster, AllreduceAveragesGradients) {
  Cluster cluster = make_cluster(2, 11);
  auto p0 = cluster.replica(0).params();
  auto p1 = cluster.replica(1).params();
  p0[0]->grad.fill(1.f);
  p1[0]->grad.fill(3.f);
  cluster.exchange_gradients({1.0, 1.0});
  EXPECT_FLOAT_EQ(p0[0]->grad.data()[0], 2.f);
  EXPECT_FLOAT_EQ(p1[0]->grad.data()[0], 2.f);
}

TEST(Cluster, AllreduceWeightsByShardSize) {
  Cluster cluster = make_cluster(2, 12);
  auto p0 = cluster.replica(0).params();
  auto p1 = cluster.replica(1).params();
  p0[0]->grad.fill(1.f);
  p1[0]->grad.fill(4.f);
  cluster.exchange_gradients({3.0, 1.0});  // (3*1 + 1*4) / 4 = 1.75
  EXPECT_FLOAT_EQ(p0[0]->grad.data()[0], 1.75f);
}

TEST(Cluster, RejectsEmptyBatch) {
  Cluster cluster = make_cluster(4, 13);
  optim::SGD opt(0.1f);
  data::Batch empty;
  EXPECT_THROW(cluster.step(empty, opt), std::invalid_argument);
}

TEST(Cluster, TinyBatchDegradesGracefully) {
  // A batch smaller than the replica count used to throw; now the empty
  // shards simply carry zero allreduce weight, and the step is equivalent
  // to single-device training on the populated samples.
  Cluster cluster = make_cluster(4, 13);
  graph::Network solo = make_bnfree_net(13);
  data::Batch batch = make_batch(2, 1);

  optim::SGD opt_cluster(0.1f, 0.9f);
  optim::SGD opt_solo(0.1f, 0.9f);
  const auto result = cluster.step(batch, opt_cluster);
  EXPECT_EQ(result.processed, 2);
  EXPECT_EQ(result.dropped_replicas, 0);

  nn::SoftmaxCrossEntropy loss;
  Tensor out = solo.forward(batch.images, true);
  loss.forward(out, batch.labels);
  solo.zero_grad();
  solo.backward(loss.backward());
  opt_solo.step(solo.params());

  auto pc = cluster.replica(0).params();
  auto ps = solo.params();
  ASSERT_EQ(pc.size(), ps.size());
  for (std::size_t i = 0; i < pc.size(); ++i) {
    for (std::int64_t q = 0; q < pc[i]->value.numel(); ++q) {
      ASSERT_NEAR(pc[i]->value.data()[q], ps[i]->value.data()[q], 1e-6f);
    }
  }
  // Idle replicas received the same broadcast + step: still bit-identical.
  auto p3 = cluster.replica(3).params();
  for (std::size_t i = 0; i < pc.size(); ++i) {
    for (std::int64_t q = 0; q < pc[i]->value.numel(); ++q) {
      ASSERT_EQ(pc[i]->value.data()[q], p3[i]->value.data()[q]);
    }
  }
}

TEST(Cluster, DropRetrySucceedsOnSecondAttempt) {
  // count defaults to 1: the first attempt of replica 0 fails, the retry
  // succeeds, and no samples are lost.
  Cluster cluster = make_cluster(2, 21);
  cluster.set_fault_injector(
      robust::FaultInjector::from_string("drop-replica:replica=0", 99), {});
  optim::SGD opt(0.1f, 0.9f);
  const auto result = cluster.step(make_batch(8, 4), opt);
  EXPECT_EQ(result.retries, 1);
  EXPECT_EQ(result.dropped_replicas, 0);
  EXPECT_EQ(result.processed, 8);
  EXPECT_GT(result.fault_wait_seconds, 0.0);
}

TEST(Cluster, PersistentDropReweightsShardOntoSurvivors) {
  // Replica 1 stays down past every retry: its shard is excluded, the
  // survivors' update equals single-device training on replica 0's shard,
  // and the dead replica still ends the step bit-identical (it receives
  // the broadcast and the common optimizer step, ready to rejoin).
  Cluster cluster = make_cluster(2, 22);
  graph::Network solo = make_bnfree_net(22);
  FaultPolicy policy;
  policy.max_retries = 1;
  policy.timeout_seconds = 0.5;
  cluster.set_fault_injector(
      robust::FaultInjector::from_string("drop-replica:replica=1,count=0", 7),
      policy);
  data::Batch batch = make_batch(8, 4);
  optim::SGD opt_cluster(0.1f, 0.9f);
  optim::SGD opt_solo(0.1f, 0.9f);
  const auto result = cluster.step(batch, opt_cluster);
  EXPECT_EQ(result.dropped_replicas, 1);
  EXPECT_EQ(result.retries, 1);
  EXPECT_EQ(result.processed, 4);
  // Charged one timeout per failed attempt (initial + one retry).
  EXPECT_DOUBLE_EQ(result.fault_wait_seconds, 1.0);

  data::Batch shard;
  shard.images = Tensor({4, 2, 5, 5});
  std::copy(batch.images.data(), batch.images.data() + shard.images.numel(),
            shard.images.data());
  shard.labels.assign(batch.labels.begin(), batch.labels.begin() + 4);
  nn::SoftmaxCrossEntropy loss;
  Tensor out = solo.forward(shard.images, true);
  loss.forward(out, shard.labels);
  solo.zero_grad();
  solo.backward(loss.backward());
  opt_solo.step(solo.params());

  auto pc = cluster.replica(0).params();
  auto ps = solo.params();
  for (std::size_t i = 0; i < pc.size(); ++i) {
    for (std::int64_t q = 0; q < pc[i]->value.numel(); ++q) {
      ASSERT_NEAR(pc[i]->value.data()[q], ps[i]->value.data()[q], 1e-6f);
    }
  }
  auto p1 = cluster.replica(1).params();
  for (std::size_t i = 0; i < pc.size(); ++i) {
    for (std::int64_t q = 0; q < pc[i]->value.numel(); ++q) {
      ASSERT_EQ(pc[i]->value.data()[q], p1[i]->value.data()[q]);
    }
  }
}

TEST(Cluster, DelayWithinTimeoutIsChargedNotRetried) {
  Cluster cluster = make_cluster(2, 23);
  cluster.set_fault_injector(robust::FaultInjector::from_string(
      "delay-replica:replica=1,delay=0.3", 5), {});
  optim::SGD opt(0.1f);
  const auto result = cluster.step(make_batch(8, 6), opt);
  EXPECT_EQ(result.retries, 0);
  EXPECT_EQ(result.dropped_replicas, 0);
  EXPECT_DOUBLE_EQ(result.fault_wait_seconds, 0.3);
  EXPECT_EQ(result.processed, 8);
}

TEST(Cluster, DelayPastTimeoutFailsTheAttempt) {
  Cluster cluster = make_cluster(2, 24);
  FaultPolicy policy;
  policy.max_retries = 0;
  policy.timeout_seconds = 1.0;
  cluster.set_fault_injector(robust::FaultInjector::from_string(
      "delay-replica:replica=1,delay=5,count=0", 5), policy);
  optim::SGD opt(0.1f);
  const auto result = cluster.step(make_batch(8, 6), opt);
  EXPECT_EQ(result.dropped_replicas, 1);
  EXPECT_EQ(result.processed, 4);
}

TEST(Cluster, EveryReplicaDownThrows) {
  Cluster cluster = make_cluster(2, 25);
  cluster.set_fault_injector(
      robust::FaultInjector::from_string("drop-replica:count=0", 5), {});
  optim::SGD opt(0.1f);
  EXPECT_THROW(cluster.step(make_batch(8, 6), opt), std::runtime_error);
}

TEST(Cluster, ReplicaTargetedGradientFaultKeepsReplicasIdentical) {
  // Gradient corruption on one replica flows through the allreduce into
  // everyone — replicas stay bit-identical (flagging the damage is the
  // HealthMonitor's job, not the cluster's).
  Cluster cluster = make_cluster(2, 26);
  cluster.set_fault_injector(robust::FaultInjector::from_string(
      "scale-grad:replica=1,scale=100", 5), {});
  optim::SGD opt(0.1f, 0.9f);
  cluster.step(make_batch(8, 6), opt);
  EXPECT_EQ(cluster.fault_injector().total_fires(), 1);
  auto p0 = cluster.replica(0).params();
  auto p1 = cluster.replica(1).params();
  for (std::size_t i = 0; i < p0.size(); ++i) {
    for (std::int64_t q = 0; q < p0[i]->value.numel(); ++q) {
      ASSERT_EQ(p0[i]->value.data()[q], p1[i]->value.data()[q]);
    }
  }
}

TEST(ClusterFaultPolicy, ValidatesFields) {
  FaultPolicy bad;
  bad.max_retries = -1;
  Cluster cluster = make_cluster(2, 27);
  EXPECT_THROW(cluster.set_fault_injector({}, bad), std::invalid_argument);
  bad.max_retries = 0;
  bad.timeout_seconds = -2.0;
  EXPECT_THROW(cluster.set_fault_injector({}, bad), std::invalid_argument);
}

TEST(Cluster, CommBytesMatchRingFormula) {
  Cluster cluster = make_cluster(4, 14);
  optim::SGD opt(0.1f);
  const auto result = cluster.step(make_batch(8, 2), opt);
  const double model_bytes =
      static_cast<double>(cluster.replica(0).num_params()) * 4.0;
  EXPECT_DOUBLE_EQ(result.comm_bytes_per_gpu, 2.0 * 3.0 / 4.0 * model_bytes);
  EXPECT_GT(result.comm_time_modeled, 0.0);
  EXPECT_DOUBLE_EQ(cluster.update_bytes(), result.comm_bytes_per_gpu);
}

TEST(Cluster, LossDecreasesOverSteps) {
  Cluster cluster = make_cluster(2, 15);
  optim::SGD opt(0.1f, 0.9f);
  data::Batch batch = make_batch(12, 5);
  double first = 0, last = 0;
  for (int step = 0; step < 15; ++step) {
    const auto r = cluster.step(batch, opt);
    if (step == 0) first = r.loss;
    last = r.loss;
  }
  EXPECT_LT(last, first);
}


TEST(Cluster, ReconfigurationKeepsReplicasConsistent) {
  // Data-parallel PruneTrain: every replica prunes deterministically from
  // identical weights, so reconfiguring each replica independently leaves
  // the cluster consistent and training proceeds on the smaller model.
  models::ModelConfig mc;
  mc.image_h = 8;
  mc.image_w = 8;
  mc.classes = 4;
  mc.width_mult = 0.5f;
  std::vector<graph::Network> nets;
  for (int i = 0; i < 2; ++i) nets.push_back(models::build_resnet_basic(8, mc));
  Cluster cluster(std::move(nets), spec_for(2));

  // Kill one stage-variable channel identically on both replicas (writers
  // and readers), as group lasso would.
  for (int r = 0; r < 2; ++r) {
    graph::Network& net = cluster.replica(r);
    const auto& blk = net.info.blocks[0];
    auto& stem = net.layer_as<nn::Conv2d>(net.info.first_conv);
    auto& c1 = net.layer_as<nn::Conv2d>(blk.path_convs[0]);
    auto& c2 = net.layer_as<nn::Conv2d>(blk.path_convs[1]);
    const std::int64_t len0 = stem.in_channels() * 9;
    for (std::int64_t q = 0; q < len0; ++q) stem.weight().value.data()[q] = 0.f;
    const std::int64_t rs = 9;
    for (std::int64_t k = 0; k < c1.out_channels(); ++k) {
      for (std::int64_t q = 0; q < rs; ++q) {
        c1.weight().value.data()[(k * c1.in_channels()) * rs + q] = 0.f;
      }
    }
    const std::int64_t len2 = c2.in_channels() * rs;
    for (std::int64_t q = 0; q < len2; ++q) c2.weight().value.data()[q] = 0.f;
    // Readers of the stage var in the next block.
    const auto& blk1 = net.info.blocks[1];
    auto& n1 = net.layer_as<nn::Conv2d>(blk1.path_convs[0]);
    for (std::int64_t k = 0; k < n1.out_channels(); ++k) {
      for (std::int64_t q = 0; q < rs; ++q) {
        n1.weight().value.data()[(k * n1.in_channels()) * rs + q] = 0.f;
      }
    }
    auto& sc = net.layer_as<nn::Conv2d>(blk1.shortcut_conv);
    for (std::int64_t k = 0; k < sc.out_channels(); ++k) {
      sc.weight().value.data()[k * sc.in_channels()] = 0.f;
    }
    prune::Reconfigurer rec(net, 1e-4f);
    const auto stats = rec.reconfigure();
    EXPECT_TRUE(stats.changed);
  }

  // Replica structures must agree, and training must still work.
  EXPECT_EQ(cluster.replica(0).num_params(), cluster.replica(1).num_params());
  optim::SGD opt(0.05f, 0.9f);
  Rng rng(77);
  data::Batch batch;
  batch.images = Tensor::randn({8, 3, 8, 8}, rng);
  for (int i = 0; i < 8; ++i) batch.labels.push_back(i % 4);
  const auto result = cluster.step(batch, opt);
  EXPECT_TRUE(std::isfinite(result.loss));
  auto p0 = cluster.replica(0).params();
  auto p1 = cluster.replica(1).params();
  for (std::size_t i = 0; i < p0.size(); ++i) {
    for (std::int64_t q = 0; q < p0[i]->value.numel(); ++q) {
      ASSERT_EQ(p0[i]->value.data()[q], p1[i]->value.data()[q]);
    }
  }
}

// ---------------------------------------------------------------------------
// Elastic membership (ISSUE 5): state machine, determinism contract, quorum,
// reconfiguration under churn, and checkpointed rejoin.

namespace fs = std::filesystem;

/// Fresh per-test scratch directory (pid-suffixed so the plain and .asan
/// binaries never collide under a concurrent ctest run).
fs::path scratch_dir(const std::string& tag) {
  const fs::path p = fs::temp_directory_path() /
                     ("pt_dist_" + tag + "_" + std::to_string(::getpid()));
  fs::remove_all(p);
  fs::create_directories(p);
  return p;
}

ElasticCluster make_elastic(int replicas, std::uint64_t seed = 42,
                            MembershipConfig mc = {}) {
  std::vector<graph::Network> nets;
  for (int i = 0; i < replicas; ++i) nets.push_back(make_bnfree_net(seed));
  return ElasticCluster(std::move(nets), spec_for(replicas), mc);
}

void expect_params_bitwise_equal(graph::Network& a, graph::Network& b) {
  auto pa = a.params();
  auto pb = b.params();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    ASSERT_EQ(pa[i]->value.numel(), pb[i]->value.numel());
    for (std::int64_t q = 0; q < pa[i]->value.numel(); ++q) {
      ASSERT_EQ(pa[i]->value.data()[q], pb[i]->value.data()[q]);
    }
  }
}

/// Zeroes one stage-variable channel group (writers and readers alike, as
/// group lasso would) so Reconfigurer has real surgery to perform.
void zero_stage_group(graph::Network& net) {
  const auto& blk = net.info.blocks[0];
  auto& stem = net.layer_as<nn::Conv2d>(net.info.first_conv);
  auto& c1 = net.layer_as<nn::Conv2d>(blk.path_convs[0]);
  auto& c2 = net.layer_as<nn::Conv2d>(blk.path_convs[1]);
  const std::int64_t len0 = stem.in_channels() * 9;
  for (std::int64_t q = 0; q < len0; ++q) stem.weight().value.data()[q] = 0.f;
  const std::int64_t rs = 9;
  for (std::int64_t k = 0; k < c1.out_channels(); ++k) {
    for (std::int64_t q = 0; q < rs; ++q) {
      c1.weight().value.data()[(k * c1.in_channels()) * rs + q] = 0.f;
    }
  }
  const std::int64_t len2 = c2.in_channels() * rs;
  for (std::int64_t q = 0; q < len2; ++q) c2.weight().value.data()[q] = 0.f;
  const auto& blk1 = net.info.blocks[1];
  auto& n1 = net.layer_as<nn::Conv2d>(blk1.path_convs[0]);
  for (std::int64_t k = 0; k < n1.out_channels(); ++k) {
    for (std::int64_t q = 0; q < rs; ++q) {
      n1.weight().value.data()[(k * n1.in_channels()) * rs + q] = 0.f;
    }
  }
  auto& sc = net.layer_as<nn::Conv2d>(blk1.shortcut_conv);
  for (std::int64_t k = 0; k < sc.out_channels(); ++k) {
    sc.weight().value.data()[k * sc.in_channels()] = 0.f;
  }
}

models::ModelConfig small_resnet_cfg() {
  models::ModelConfig mc;
  mc.image_h = 8;
  mc.image_w = 8;
  mc.classes = 4;
  mc.width_mult = 0.5f;
  return mc;
}

data::Batch make_resnet_batch(std::uint64_t seed) {
  Rng rng(seed);
  data::Batch b;
  b.images = Tensor::randn({8, 3, 8, 8}, rng);
  for (int i = 0; i < 8; ++i) b.labels.push_back(i % 4);
  return b;
}

TEST(Membership, StateMachineFollowsHeartbeatProtocol) {
  MembershipConfig mc;
  mc.suspect_threshold = 2;
  MembershipTable table(4, mc);
  table.schedule_departure(2, 1);

  table.poll(0, nullptr);
  EXPECT_EQ(table.participants(), (std::vector<int>{0, 1, 2, 3}));

  // First missed ack: out of the step immediately (the latch decides
  // participation), state only SUSPECT.
  table.poll(1, nullptr);
  EXPECT_EQ(table.participants(), (std::vector<int>{0, 1, 3}));
  EXPECT_EQ(table.member(2).state, ReplicaState::kSuspect);
  EXPECT_TRUE(table.member(2).failed);
  EXPECT_EQ(table.member(2).failed_since, 1);

  // Second consecutive miss reaches suspect_threshold: declared DEAD.
  table.poll(2, nullptr);
  EXPECT_EQ(table.member(2).state, ReplicaState::kDead);
  EXPECT_EQ(table.member(2).missed_acks, 2);

  auto edges = table.drain_transitions();
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0].describe(), "replica 2: healthy -> suspect at step 1");
  EXPECT_EQ(edges[1].describe(), "replica 2: suspect -> dead at step 2");

  // Rejoin: fenced for exactly one step, then a full participant again.
  table.schedule_rejoin(2, 4);
  table.poll(3, nullptr);
  EXPECT_EQ(table.member(2).state, ReplicaState::kDead);
  table.poll(4, nullptr);
  EXPECT_EQ(table.member(2).state, ReplicaState::kRejoining);
  EXPECT_EQ(table.rejoining(), (std::vector<int>{2}));
  EXPECT_EQ(table.participants(), (std::vector<int>{0, 1, 3}));
  table.poll(5, nullptr);
  EXPECT_EQ(table.member(2).state, ReplicaState::kHealthy);
  EXPECT_EQ(table.member(2).rejoined_at, 5);
  EXPECT_EQ(table.participants(), (std::vector<int>{0, 1, 2, 3}));

  edges = table.drain_transitions();
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0].describe(), "replica 2: dead -> rejoining at step 4");
  EXPECT_EQ(edges[1].describe(), "replica 2: rejoining -> healthy at step 5");
}

TEST(Membership, RejoinCanBeDisabled) {
  MembershipConfig mc;
  mc.suspect_threshold = 1;
  mc.allow_rejoin = false;
  MembershipTable table(2, mc);
  table.schedule_departure(1, 0);
  table.schedule_rejoin(1, 2);
  for (std::int64_t s = 0; s < 4; ++s) table.poll(s, nullptr);
  EXPECT_EQ(table.member(1).state, ReplicaState::kDead);
  EXPECT_EQ(table.participants(), (std::vector<int>{0}));
}

TEST(Membership, QuorumThresholdAndValidation) {
  MembershipConfig mc;
  mc.min_live_fraction = 0.5;
  EXPECT_EQ(MembershipTable(4, mc).quorum_threshold(), 2);
  mc.min_live_fraction = 0.51;
  EXPECT_EQ(MembershipTable(4, mc).quorum_threshold(), 3);
  mc.min_live_fraction = 1.0;
  EXPECT_EQ(MembershipTable(3, mc).quorum_threshold(), 3);

  MembershipConfig bad;
  bad.suspect_threshold = 0;
  EXPECT_THROW(MembershipTable(2, bad), std::invalid_argument);
  bad = {};
  bad.min_live_fraction = 0.0;
  EXPECT_THROW(MembershipTable(2, bad), std::invalid_argument);
  bad = {};
  bad.min_live_fraction = 1.5;
  EXPECT_THROW(MembershipTable(2, bad), std::invalid_argument);
  bad = {};
  bad.ewma_alpha = 0.0;
  EXPECT_THROW(MembershipTable(2, bad), std::invalid_argument);
  EXPECT_THROW(MembershipTable(0, MembershipConfig{}), std::invalid_argument);
}

TEST(Membership, EwmaTracksStragglerEstimates) {
  MembershipConfig mc;
  mc.ewma_alpha = 0.2;
  MembershipTable table(2, mc);
  table.record_step_time(0, 1.0);  // first sample taken verbatim
  EXPECT_DOUBLE_EQ(table.member(0).ewma_step_seconds, 1.0);
  table.record_step_time(0, 2.0);
  EXPECT_DOUBLE_EQ(table.member(0).ewma_step_seconds, 0.2 * 2.0 + 0.8 * 1.0);
  EXPECT_DOUBLE_EQ(table.max_ewma({0, 1}), 1.2);
  EXPECT_DOUBLE_EQ(table.max_ewma({1}), 0.0);
}

TEST(ElasticCluster, AllHealthyMatchesFixedClusterBitwise) {
  // With nobody failing, the elastic step is the fixed cluster's step:
  // same shards, same allreduce order, same update — bit for bit.
  Cluster fixed = make_cluster(3, 42);
  ElasticCluster elastic = make_elastic(3, 42);
  optim::SGD opt_a(0.05f, 0.9f);
  optim::SGD opt_b(0.05f, 0.9f);
  for (int step = 0; step < 4; ++step) {
    data::Batch batch = make_batch(9 + step, 40 + step);
    const auto ra = fixed.step(batch, opt_a);
    const auto rb = elastic.step(batch, opt_b);
    EXPECT_DOUBLE_EQ(ra.loss, rb.loss);
    EXPECT_EQ(ra.correct, rb.correct);
    EXPECT_EQ(rb.live_replicas, 3);
  }
  for (int r = 0; r < 3; ++r) {
    expect_params_bitwise_equal(fixed.replica(r), elastic.replica(r));
  }
}

TEST(ElasticCluster, InjectedKillAtStepNMatchesStaticScheduleBitwise) {
  // The acceptance test for the determinism contract: a run where replica 2
  // is killed by an injected fault at step 5 (detection machinery and all)
  // is bitwise identical to a run whose membership schedule had that
  // departure fixed from step 0.
  ElasticCluster injected = make_elastic(4, 42);
  injected.set_fault_injector(
      robust::FaultInjector::from_string("kill-replica:replica=2,step=5", 99));
  ElasticCluster scheduled = make_elastic(4, 42);
  scheduled.schedule_departure(2, 5);

  optim::SGD opt_a(0.05f, 0.9f);
  optim::SGD opt_b(0.05f, 0.9f);
  for (int step = 0; step < 10; ++step) {
    data::Batch batch = make_batch(13, 300 + step);  // uneven shards too
    const auto ra = injected.step(batch, opt_a);
    const auto rb = scheduled.step(batch, opt_b);
    EXPECT_EQ(ra.live_replicas, rb.live_replicas);
    EXPECT_EQ(ra.processed, rb.processed);
    EXPECT_DOUBLE_EQ(ra.loss, rb.loss);
  }
  EXPECT_TRUE(injected.member(2).failed);
  EXPECT_EQ(injected.member(2).failed_since, 5);
  EXPECT_EQ(scheduled.member(2).failed_since, 5);
  EXPECT_EQ(injected.member(2).state, ReplicaState::kDead);
  for (int r = 0; r < 4; ++r) {
    expect_params_bitwise_equal(injected.replica(r), scheduled.replica(r));
  }
  // The survivors also agree with each other (same broadcast).
  expect_params_bitwise_equal(injected.replica(0), injected.replica(1));
  expect_params_bitwise_equal(injected.replica(0), injected.replica(3));
}

TEST(ElasticCluster, FlakyFaultsAreDeterministicGivenSeed) {
  MembershipConfig mc;
  mc.min_live_fraction = 0.25;
  auto build = [&]() {
    ElasticCluster c = make_elastic(4, 42, mc);
    c.set_fault_injector(robust::FaultInjector::from_string(
        "flaky-replica:prob=0.3,count=0", 7));
    return c;
  };
  ElasticCluster a = build();
  ElasticCluster b = build();
  optim::SGD opt_a(0.05f, 0.9f);
  optim::SGD opt_b(0.05f, 0.9f);
  bool degraded_a = false;
  bool degraded_b = false;
  for (int step = 0; step < 8; ++step) {
    data::Batch batch = make_batch(12, 700 + step);
    if (!degraded_a) {
      try {
        a.step(batch, opt_a);
      } catch (const ClusterDegraded&) {
        degraded_a = true;
      }
    }
    if (!degraded_b) {
      try {
        b.step(batch, opt_b);
      } catch (const ClusterDegraded&) {
        degraded_b = true;
      }
    }
    ASSERT_EQ(degraded_a, degraded_b);  // same seed, same fate, same step
  }
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(a.member(r).failed, b.member(r).failed);
    EXPECT_EQ(a.member(r).failed_since, b.member(r).failed_since);
    EXPECT_EQ(a.member(r).state, b.member(r).state);
    expect_params_bitwise_equal(a.replica(r), b.replica(r));
  }
}

TEST(ElasticCluster, QuorumLossRaisesClusterDegraded) {
  MembershipConfig mc;
  mc.min_live_fraction = 0.75;  // quorum = 3 of 4
  ElasticCluster cluster = make_elastic(4, 42, mc);
  cluster.schedule_departure(1, 1);
  cluster.schedule_departure(2, 1);
  optim::SGD opt(0.05f, 0.9f);
  cluster.step(make_batch(8, 1), opt);  // 4 live: fine
  try {
    cluster.step(make_batch(8, 2), opt);
    FAIL() << "expected ClusterDegraded";
  } catch (const ClusterDegraded& e) {
    EXPECT_EQ(e.event().type, robust::EventType::kQuorumLoss);
    EXPECT_EQ(e.event().severity, robust::Severity::kFatal);
    EXPECT_DOUBLE_EQ(e.event().value, 2.0);  // live count at the loss
    EXPECT_NE(std::string(e.what()).find("quorum"), std::string::npos);
  }
  const auto events = cluster.drain_health_events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].type, robust::EventType::kQuorumLoss);
}

TEST(ElasticCluster, EveryReplicaDeadIsDegradedEvenAtMinimalQuorum) {
  MembershipConfig mc;
  mc.min_live_fraction = 0.25;  // quorum = 1 — but zero participants is
                                // always degraded
  ElasticCluster cluster = make_elastic(2, 42, mc);
  cluster.schedule_departure(0, 1);
  cluster.schedule_departure(1, 1);
  optim::SGD opt(0.05f, 0.9f);
  cluster.step(make_batch(6, 1), opt);
  EXPECT_THROW(cluster.step(make_batch(6, 2), opt), ClusterDegraded);
}

TEST(ElasticCluster, DegenerateRingChargesNoComm) {
  ElasticCluster cluster = make_elastic(2, 42);  // quorum = 1 of 2
  cluster.schedule_departure(1, 1);
  optim::SGD opt(0.05f, 0.9f);
  cluster.step(make_batch(6, 1), opt);
  const auto r = cluster.step(make_batch(6, 2), opt);
  EXPECT_EQ(r.live_replicas, 1);
  EXPECT_DOUBLE_EQ(r.comm_bytes_per_gpu, 0.0);
  EXPECT_DOUBLE_EQ(r.comm_time_modeled, 0.0);
  EXPECT_DOUBLE_EQ(cluster.update_bytes(), 0.0);
  EXPECT_TRUE(std::isfinite(r.loss));
}

TEST(ElasticCluster, StragglerDelayFeedsModeledStepTime) {
  ElasticCluster cluster = make_elastic(2, 42);
  cluster.set_fault_injector(robust::FaultInjector::from_string(
      "delay-replica:replica=1,delay=3.5,count=0", 5));
  optim::SGD opt(0.05f, 0.9f);
  const auto r = cluster.step(make_batch(8, 9), opt);
  EXPECT_DOUBLE_EQ(r.fault_wait_seconds, 3.5);
  EXPECT_GT(cluster.member(1).ewma_step_seconds, 3.5);
  EXPECT_GE(r.step_time_modeled, 3.5 + r.comm_time_modeled);
  // Straggler accounting is bookkeeping, never numerics: both replicas
  // still agree bitwise.
  expect_params_bitwise_equal(cluster.replica(0), cluster.replica(1));
}

TEST(ElasticCluster, RejoinerReplaysTopologyFromCheckpointAndSyncsBitwise) {
  const fs::path dir = scratch_dir("rejoin");
  MembershipConfig mc;
  mc.suspect_threshold = 1;  // dead on the first missed ack
  mc.min_live_fraction = 0.25;
  ElasticCluster cluster = make_elastic(3, 42, mc);
  const std::string ckpt_path = (dir / "ckpt-latest.bin").string();
  ckpt::Checkpoint::capture(cluster.replica(0)).save(ckpt_path);
  cluster.set_resync_checkpoint(ckpt_path);
  cluster.schedule_departure(1, 2);
  cluster.schedule_rejoin(1, 3);

  optim::SGD opt(0.05f, 0.9f);
  for (int step = 0; step < 3; ++step) {
    cluster.step(make_batch(9, 900 + step), opt);
  }
  EXPECT_EQ(cluster.member(1).state, ReplicaState::kDead);

  // Step 3: the rejoiner is fenced (2 participants) and resynced at the end.
  const auto fence = cluster.step(make_batch(9, 903), opt);
  EXPECT_EQ(fence.live_replicas, 2);
  EXPECT_GT(fence.resync_bytes, 0);
  EXPECT_EQ(cluster.member(1).state, ReplicaState::kRejoining);
  EXPECT_EQ(cluster.resync_bytes_total(), fence.resync_bytes);

  // Step 4: first synced step — a full participant, bitwise identical.
  const auto synced = cluster.step(make_batch(9, 904), opt);
  EXPECT_EQ(synced.live_replicas, 3);
  EXPECT_EQ(cluster.member(1).rejoined_at, 4);
  expect_params_bitwise_equal(cluster.replica(0), cluster.replica(1));
  expect_params_bitwise_equal(cluster.replica(0), cluster.replica(2));

  const auto edges = cluster.drain_transitions();
  ASSERT_GE(edges.size(), 4u);
  EXPECT_EQ(edges.back().describe(), "replica 1: rejoining -> healthy at step 4");
  fs::remove_all(dir);
}

TEST(ElasticCluster, KillStraddlingReconfigurationKeepsSurvivorsConsistent) {
  // One replica dies before the reconfiguration boundary, another after it;
  // the survivors must agree bitwise throughout, and the pre-boundary
  // corpse keeps its stale (unpruned) topology.
  models::ModelConfig mcfg = small_resnet_cfg();
  std::vector<graph::Network> nets;
  for (int i = 0; i < 4; ++i) nets.push_back(models::build_resnet_basic(8, mcfg));
  MembershipConfig mc;
  mc.min_live_fraction = 0.25;
  ElasticCluster cluster(std::move(nets), spec_for(4), mc);
  cluster.schedule_departure(3, 1);  // dies before the reconfiguration
  cluster.schedule_departure(1, 4);  // dies after it

  optim::SGD opt(0.05f, 0.9f);
  auto run_step = [&](int step) {
    return cluster.step(make_resnet_batch(500 + static_cast<std::uint64_t>(step)),
                        opt);
  };
  run_step(0);
  run_step(1);  // replica 3 latches out here

  // Reconfiguration boundary: identical surgery on every live replica; the
  // dead replica 3 is skipped exactly as the trainer skips it.
  for (int r : {0, 1, 2}) {
    graph::Network& net = cluster.replica(r);
    zero_stage_group(net);
    prune::Reconfigurer rec(net, 1e-4f);
    EXPECT_TRUE(rec.reconfigure().changed);
  }
  EXPECT_GT(cluster.replica(3).num_params(), cluster.replica(0).num_params());
  EXPECT_EQ(cluster.replica(0).num_params(), cluster.replica(2).num_params());

  run_step(2);
  run_step(3);
  run_step(4);  // replica 1 latches out here, post-reconfiguration
  const auto last = run_step(5);
  EXPECT_EQ(last.live_replicas, 2);
  EXPECT_TRUE(std::isfinite(last.loss));
  EXPECT_EQ(cluster.member(1).failed_since, 4);
  expect_params_bitwise_equal(cluster.replica(0), cluster.replica(2));
}

TEST(ElasticCluster, RejoinWithStaleTopologyFallsBackToSurvivorClone) {
  // The checkpoint on disk predates a reconfiguration, so its shapes are
  // stale; the rejoiner must detect that during topology replay and clone
  // the survivor's structure instead, ending bitwise-synced.
  const fs::path dir = scratch_dir("stale");
  models::ModelConfig mcfg = small_resnet_cfg();
  std::vector<graph::Network> nets;
  for (int i = 0; i < 3; ++i) nets.push_back(models::build_resnet_basic(8, mcfg));
  MembershipConfig mc;
  mc.suspect_threshold = 2;
  mc.min_live_fraction = 0.25;
  ElasticCluster cluster(std::move(nets), spec_for(3), mc);

  // Pre-reconfiguration checkpoint — will be stale by rejoin time.
  const std::string ckpt_path = (dir / "ckpt-latest.bin").string();
  ckpt::Checkpoint::capture(cluster.replica(0)).save(ckpt_path);
  cluster.set_resync_checkpoint(ckpt_path);
  cluster.schedule_departure(2, 1);

  optim::SGD opt(0.05f, 0.9f);
  for (int step = 0; step < 3; ++step) {
    cluster.step(make_resnet_batch(600 + static_cast<std::uint64_t>(step)), opt);
  }
  EXPECT_EQ(cluster.member(2).state, ReplicaState::kDead);

  // Reconfigure the live replicas while 2 is dead.
  for (int r : {0, 1}) {
    graph::Network& net = cluster.replica(r);
    zero_stage_group(net);
    prune::Reconfigurer rec(net, 1e-4f);
    EXPECT_TRUE(rec.reconfigure().changed);
  }
  EXPECT_GT(cluster.replica(2).num_params(), cluster.replica(0).num_params());

  cluster.schedule_rejoin(2, 4);
  cluster.step(make_resnet_batch(603), opt);               // step 3: 2 live
  const auto fence = cluster.step(make_resnet_batch(604), opt);  // fence
  EXPECT_GT(fence.resync_bytes, 0);
  const auto synced = cluster.step(make_resnet_batch(605), opt);
  EXPECT_EQ(synced.live_replicas, 3);
  EXPECT_EQ(cluster.replica(2).num_params(), cluster.replica(0).num_params());
  expect_params_bitwise_equal(cluster.replica(0), cluster.replica(2));
  expect_params_bitwise_equal(cluster.replica(0), cluster.replica(1));
  fs::remove_all(dir);
}

TEST(AllreduceDivergence, NamesTheOffendingReplica) {
  graph::Network a = make_bnfree_net(1);
  // A structurally different replica: its parameter table cannot match.
  graph::Network b;
  {
    Rng rng(3);
    const int input = b.add_input();
    auto gap = std::make_shared<nn::GlobalAvgPool>();
    const int n1 = b.add_layer(gap, input);
    auto fc = std::make_shared<nn::Linear>(2, 3, rng);
    b.set_output(b.add_layer(fc, n1));
  }
  std::vector<graph::Network*> nets{&a, &b};
  DenseCodec codec;
  codec.bind(a, 2);
  try {
    exchange_gradients(codec, nets, {1.0, 1.0}, exec::ExecContext::serial());
    FAIL() << "expected ReplicaDivergence";
  } catch (const ReplicaDivergence& e) {
    EXPECT_EQ(e.replica(), 1);
    EXPECT_EQ(e.param_count(), b.params().size());
    EXPECT_EQ(e.expected_count(), a.params().size());
    EXPECT_NE(std::string(e.what()).find("replica 1"), std::string::npos);
    const auto ev = e.to_health_event(7);
    EXPECT_EQ(ev.type, robust::EventType::kReplicaDivergence);
    EXPECT_EQ(ev.severity, robust::Severity::kFatal);
    EXPECT_EQ(ev.epoch, 7);
  }
  // With an explicit rank map the true cluster rank is reported, not the
  // dense index into the participant list.
  try {
    exchange_gradients(codec, nets, {1.0, 1.0}, exec::ExecContext::serial(),
                       {0, 3});
    FAIL() << "expected ReplicaDivergence";
  } catch (const ReplicaDivergence& e) {
    EXPECT_EQ(e.replica(), 3);
  }
}

// ---------------------------------------------------------------------------
// Trainer-level elastic runs.

data::SyntheticSpec elastic_data() {
  data::SyntheticSpec spec;
  spec.name = "tiny";
  spec.classes = 8;
  spec.channels = 3;
  spec.height = 8;
  spec.width = 8;
  spec.train_samples = 256;
  spec.test_samples = 128;
  spec.noise = 0.8f;
  spec.max_shift = 2;
  spec.seed = 5;
  return spec;
}

graph::Network elastic_net() {
  models::ModelConfig mc;
  mc.image_h = 8;
  mc.image_w = 8;
  mc.classes = 8;
  mc.width_mult = 0.5f;
  mc.seed = 21;
  return models::build_resnet_basic(8, mc);
}

core::TrainConfig elastic_cfg(const std::string& dir) {
  core::TrainConfig cfg;
  cfg.policy = core::PrunePolicy::kPruneTrain;
  cfg.epochs = 4;
  cfg.batch_size = 64;
  cfg.base_lr = 0.1f;
  cfg.weight_decay = 1e-4f;
  cfg.lr_milestones = {3};
  cfg.lasso_ratio = 0.3f;
  cfg.lasso_boost = 2000.f;  // proxy time compression; prunes by epoch 2
  cfg.reconfig_interval = 2;
  cfg.eval_interval = 2;
  cfg.checkpoint_dir = dir;
  cfg.max_rollbacks = 2;
  cfg.replicas = 2;
  return cfg;
}

TEST(ElasticTrainer, ValidatesElasticFields) {
  core::TrainConfig cfg;
  cfg.replicas = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.replicas = 2;
  cfg.min_live_fraction = 1.5;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.replicas = 2;
  cfg.suspect_threshold = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.replicas = 2;
  cfg.proximal_update = false;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.replicas = 2;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(ElasticTrainer, SurvivesPermanentKillMidRun) {
  auto data = data::SyntheticImageDataset(elastic_data());
  const fs::path dir = scratch_dir("kill");
  graph::Network net = elastic_net();
  core::TrainConfig cfg = elastic_cfg(dir.string());
  cfg.fault_spec = "kill-replica:replica=1,step=3";
  core::PruneTrainer trainer(net, data, cfg);
  const auto result = trainer.run();

  // The run completes on the surviving replica (quorum = 1 of 2), through
  // reconfigurations, with the fault accounted and no abort.
  EXPECT_EQ(result.epochs.size(), 4u);
  EXPECT_TRUE(std::isfinite(result.epochs.back().train_loss));
  EXPECT_TRUE(std::isfinite(result.final_test_acc));
  EXPECT_FALSE(trainer.recovery_report().aborted);
  EXPECT_GE(trainer.recovery_report().faults_injected, 1);
  fs::remove_all(dir);
}

TEST(ElasticTrainer, QuorumLossUnderFlakyAbortsWithDiagnosticCheckpoint) {
  auto data = data::SyntheticImageDataset(elastic_data());
  const fs::path dir = scratch_dir("quorum");
  graph::Network net = elastic_net();
  core::TrainConfig cfg = elastic_cfg(dir.string());
  cfg.replicas = 4;
  cfg.min_live_fraction = 0.75;
  cfg.fault_spec = "flaky-replica:prob=1,count=0";  // everyone dies at once
  core::PruneTrainer trainer(net, data, cfg);
  try {
    trainer.run();
    FAIL() << "expected robust::TrainingAborted";
  } catch (const robust::TrainingAborted& e) {
    EXPECT_TRUE(e.report().aborted);
    bool saw_quorum_loss = false;
    for (const auto& ev : e.report().events) {
      if (ev.type == robust::EventType::kQuorumLoss) {
        saw_quorum_loss = true;
        EXPECT_GE(ev.epoch, 0);  // stamped by the trainer, not -1
      }
    }
    EXPECT_TRUE(saw_quorum_loss);
  }

  // A serialized guardian report rides in the diagnostic checkpoint.
  ckpt::Checkpoint ck =
      ckpt::Checkpoint::load((dir / "ckpt-diagnostic.bin").string());
  const std::vector<std::uint8_t>* section = ck.section("guardian");
  ASSERT_NE(section, nullptr);
  const auto report = robust::deserialize_report(*section);
  EXPECT_TRUE(report.aborted);
  ASSERT_FALSE(report.events.empty());
  fs::remove_all(dir);
}

}  // namespace
}  // namespace pt::dist
