// Data-parallel cluster tests: the defining property (synchronous data
// parallelism == single-device training on the full batch, for BN-free
// models), replica consistency, allreduce arithmetic, and comm accounting.
#include <gtest/gtest.h>

#include <cmath>

#include "dist/cluster.h"
#include "models/builders.h"
#include "robust/fault.h"
#include "prune/reconfigure.h"
#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/pool.h"

namespace pt::dist {
namespace {

/// BN-free model so shard statistics cannot diverge from full-batch math.
graph::Network make_bnfree_net(std::uint64_t seed) {
  graph::Network net;
  Rng rng(seed);
  const int input = net.add_input();
  auto c1 = std::make_shared<nn::Conv2d>(2, 6, 3, 1, 1, rng);
  const int n1 = net.add_layer(c1, input);
  auto r1 = std::make_shared<nn::ReLU>();
  const int n2 = net.add_layer(r1, n1);
  auto gap = std::make_shared<nn::GlobalAvgPool>();
  const int n3 = net.add_layer(gap, n2);
  auto fc = std::make_shared<nn::Linear>(6, 3, rng);
  net.set_output(net.add_layer(fc, n3));
  return net;
}

data::Batch make_batch(std::int64_t n, std::uint64_t seed) {
  Rng rng(seed);
  data::Batch b;
  b.images = Tensor::randn({n, 2, 5, 5}, rng);
  for (std::int64_t i = 0; i < n; ++i) {
    b.labels.push_back(static_cast<std::int64_t>(rng.uniform_int(3)));
  }
  return b;
}

cost::CommSpec spec_for(int gpus) {
  cost::CommSpec s;
  s.gpus = gpus;
  return s;
}

Cluster make_cluster(int replicas, std::uint64_t seed = 42) {
  std::vector<graph::Network> nets;
  for (int i = 0; i < replicas; ++i) nets.push_back(make_bnfree_net(seed));
  return Cluster(std::move(nets), spec_for(replicas));
}

TEST(Cluster, RejectsMismatchedCommSpec) {
  std::vector<graph::Network> nets;
  nets.push_back(make_bnfree_net(1));
  EXPECT_THROW(Cluster(std::move(nets), spec_for(4)), std::invalid_argument);
}

TEST(Cluster, StepMatchesSingleDeviceTraining) {
  // 4-way data parallelism on a divisible batch must produce the same
  // weights as one device with the full batch.
  Cluster cluster = make_cluster(4, 7);
  graph::Network solo = make_bnfree_net(7);
  data::Batch batch = make_batch(16, 3);

  optim::SGD opt_cluster(0.1f, 0.9f);
  optim::SGD opt_solo(0.1f, 0.9f);
  for (int step = 0; step < 3; ++step) {
    cluster.step(batch, opt_cluster);
    nn::SoftmaxCrossEntropy loss;
    Tensor out = solo.forward(batch.images, true);
    loss.forward(out, batch.labels);
    solo.zero_grad();
    solo.backward(loss.backward());
    opt_solo.step(solo.params());
  }
  auto pc = cluster.replica(0).params();
  auto ps = solo.params();
  ASSERT_EQ(pc.size(), ps.size());
  for (std::size_t i = 0; i < pc.size(); ++i) {
    for (std::int64_t q = 0; q < pc[i]->value.numel(); ++q) {
      EXPECT_NEAR(pc[i]->value.data()[q], ps[i]->value.data()[q], 1e-5f)
          << "param " << i << " elem " << q;
    }
  }
}

TEST(Cluster, ReplicasStayIdentical) {
  Cluster cluster = make_cluster(3, 9);
  optim::SGD opt(0.05f, 0.9f);
  for (int step = 0; step < 4; ++step) {
    cluster.step(make_batch(9 + step, 100 + step), opt);  // uneven shards too
  }
  auto p0 = cluster.replica(0).params();
  for (int r = 1; r < cluster.size(); ++r) {
    auto pr = cluster.replica(r).params();
    for (std::size_t i = 0; i < p0.size(); ++i) {
      for (std::int64_t q = 0; q < p0[i]->value.numel(); ++q) {
        ASSERT_EQ(p0[i]->value.data()[q], pr[i]->value.data()[q]);
      }
    }
  }
}

TEST(Cluster, AllreduceAveragesGradients) {
  Cluster cluster = make_cluster(2, 11);
  auto p0 = cluster.replica(0).params();
  auto p1 = cluster.replica(1).params();
  p0[0]->grad.fill(1.f);
  p1[0]->grad.fill(3.f);
  cluster.allreduce_gradients({1.0, 1.0});
  EXPECT_FLOAT_EQ(p0[0]->grad.data()[0], 2.f);
  EXPECT_FLOAT_EQ(p1[0]->grad.data()[0], 2.f);
}

TEST(Cluster, AllreduceWeightsByShardSize) {
  Cluster cluster = make_cluster(2, 12);
  auto p0 = cluster.replica(0).params();
  auto p1 = cluster.replica(1).params();
  p0[0]->grad.fill(1.f);
  p1[0]->grad.fill(4.f);
  cluster.allreduce_gradients({3.0, 1.0});  // (3*1 + 1*4) / 4 = 1.75
  EXPECT_FLOAT_EQ(p0[0]->grad.data()[0], 1.75f);
}

TEST(Cluster, RejectsEmptyBatch) {
  Cluster cluster = make_cluster(4, 13);
  optim::SGD opt(0.1f);
  data::Batch empty;
  EXPECT_THROW(cluster.step(empty, opt), std::invalid_argument);
}

TEST(Cluster, TinyBatchDegradesGracefully) {
  // A batch smaller than the replica count used to throw; now the empty
  // shards simply carry zero allreduce weight, and the step is equivalent
  // to single-device training on the populated samples.
  Cluster cluster = make_cluster(4, 13);
  graph::Network solo = make_bnfree_net(13);
  data::Batch batch = make_batch(2, 1);

  optim::SGD opt_cluster(0.1f, 0.9f);
  optim::SGD opt_solo(0.1f, 0.9f);
  const auto result = cluster.step(batch, opt_cluster);
  EXPECT_EQ(result.processed, 2);
  EXPECT_EQ(result.dropped_replicas, 0);

  nn::SoftmaxCrossEntropy loss;
  Tensor out = solo.forward(batch.images, true);
  loss.forward(out, batch.labels);
  solo.zero_grad();
  solo.backward(loss.backward());
  opt_solo.step(solo.params());

  auto pc = cluster.replica(0).params();
  auto ps = solo.params();
  ASSERT_EQ(pc.size(), ps.size());
  for (std::size_t i = 0; i < pc.size(); ++i) {
    for (std::int64_t q = 0; q < pc[i]->value.numel(); ++q) {
      ASSERT_NEAR(pc[i]->value.data()[q], ps[i]->value.data()[q], 1e-6f);
    }
  }
  // Idle replicas received the same broadcast + step: still bit-identical.
  auto p3 = cluster.replica(3).params();
  for (std::size_t i = 0; i < pc.size(); ++i) {
    for (std::int64_t q = 0; q < pc[i]->value.numel(); ++q) {
      ASSERT_EQ(pc[i]->value.data()[q], p3[i]->value.data()[q]);
    }
  }
}

TEST(Cluster, DropRetrySucceedsOnSecondAttempt) {
  // count defaults to 1: the first attempt of replica 0 fails, the retry
  // succeeds, and no samples are lost.
  Cluster cluster = make_cluster(2, 21);
  cluster.set_fault_injector(
      robust::FaultInjector::from_string("drop-replica:replica=0", 99), {});
  optim::SGD opt(0.1f, 0.9f);
  const auto result = cluster.step(make_batch(8, 4), opt);
  EXPECT_EQ(result.retries, 1);
  EXPECT_EQ(result.dropped_replicas, 0);
  EXPECT_EQ(result.processed, 8);
  EXPECT_GT(result.fault_wait_seconds, 0.0);
}

TEST(Cluster, PersistentDropReweightsShardOntoSurvivors) {
  // Replica 1 stays down past every retry: its shard is excluded, the
  // survivors' update equals single-device training on replica 0's shard,
  // and the dead replica still ends the step bit-identical (it receives
  // the broadcast and the common optimizer step, ready to rejoin).
  Cluster cluster = make_cluster(2, 22);
  graph::Network solo = make_bnfree_net(22);
  FaultPolicy policy;
  policy.max_retries = 1;
  policy.timeout_seconds = 0.5;
  cluster.set_fault_injector(
      robust::FaultInjector::from_string("drop-replica:replica=1,count=0", 7),
      policy);
  data::Batch batch = make_batch(8, 4);
  optim::SGD opt_cluster(0.1f, 0.9f);
  optim::SGD opt_solo(0.1f, 0.9f);
  const auto result = cluster.step(batch, opt_cluster);
  EXPECT_EQ(result.dropped_replicas, 1);
  EXPECT_EQ(result.retries, 1);
  EXPECT_EQ(result.processed, 4);
  // Charged one timeout per failed attempt (initial + one retry).
  EXPECT_DOUBLE_EQ(result.fault_wait_seconds, 1.0);

  data::Batch shard;
  shard.images = Tensor({4, 2, 5, 5});
  std::copy(batch.images.data(), batch.images.data() + shard.images.numel(),
            shard.images.data());
  shard.labels.assign(batch.labels.begin(), batch.labels.begin() + 4);
  nn::SoftmaxCrossEntropy loss;
  Tensor out = solo.forward(shard.images, true);
  loss.forward(out, shard.labels);
  solo.zero_grad();
  solo.backward(loss.backward());
  opt_solo.step(solo.params());

  auto pc = cluster.replica(0).params();
  auto ps = solo.params();
  for (std::size_t i = 0; i < pc.size(); ++i) {
    for (std::int64_t q = 0; q < pc[i]->value.numel(); ++q) {
      ASSERT_NEAR(pc[i]->value.data()[q], ps[i]->value.data()[q], 1e-6f);
    }
  }
  auto p1 = cluster.replica(1).params();
  for (std::size_t i = 0; i < pc.size(); ++i) {
    for (std::int64_t q = 0; q < pc[i]->value.numel(); ++q) {
      ASSERT_EQ(pc[i]->value.data()[q], p1[i]->value.data()[q]);
    }
  }
}

TEST(Cluster, DelayWithinTimeoutIsChargedNotRetried) {
  Cluster cluster = make_cluster(2, 23);
  cluster.set_fault_injector(robust::FaultInjector::from_string(
      "delay-replica:replica=1,delay=0.3", 5), {});
  optim::SGD opt(0.1f);
  const auto result = cluster.step(make_batch(8, 6), opt);
  EXPECT_EQ(result.retries, 0);
  EXPECT_EQ(result.dropped_replicas, 0);
  EXPECT_DOUBLE_EQ(result.fault_wait_seconds, 0.3);
  EXPECT_EQ(result.processed, 8);
}

TEST(Cluster, DelayPastTimeoutFailsTheAttempt) {
  Cluster cluster = make_cluster(2, 24);
  FaultPolicy policy;
  policy.max_retries = 0;
  policy.timeout_seconds = 1.0;
  cluster.set_fault_injector(robust::FaultInjector::from_string(
      "delay-replica:replica=1,delay=5,count=0", 5), policy);
  optim::SGD opt(0.1f);
  const auto result = cluster.step(make_batch(8, 6), opt);
  EXPECT_EQ(result.dropped_replicas, 1);
  EXPECT_EQ(result.processed, 4);
}

TEST(Cluster, EveryReplicaDownThrows) {
  Cluster cluster = make_cluster(2, 25);
  cluster.set_fault_injector(
      robust::FaultInjector::from_string("drop-replica:count=0", 5), {});
  optim::SGD opt(0.1f);
  EXPECT_THROW(cluster.step(make_batch(8, 6), opt), std::runtime_error);
}

TEST(Cluster, ReplicaTargetedGradientFaultKeepsReplicasIdentical) {
  // Gradient corruption on one replica flows through the allreduce into
  // everyone — replicas stay bit-identical (flagging the damage is the
  // HealthMonitor's job, not the cluster's).
  Cluster cluster = make_cluster(2, 26);
  cluster.set_fault_injector(robust::FaultInjector::from_string(
      "scale-grad:replica=1,scale=100", 5), {});
  optim::SGD opt(0.1f, 0.9f);
  cluster.step(make_batch(8, 6), opt);
  EXPECT_EQ(cluster.fault_injector().total_fires(), 1);
  auto p0 = cluster.replica(0).params();
  auto p1 = cluster.replica(1).params();
  for (std::size_t i = 0; i < p0.size(); ++i) {
    for (std::int64_t q = 0; q < p0[i]->value.numel(); ++q) {
      ASSERT_EQ(p0[i]->value.data()[q], p1[i]->value.data()[q]);
    }
  }
}

TEST(ClusterFaultPolicy, ValidatesFields) {
  FaultPolicy bad;
  bad.max_retries = -1;
  Cluster cluster = make_cluster(2, 27);
  EXPECT_THROW(cluster.set_fault_injector({}, bad), std::invalid_argument);
  bad.max_retries = 0;
  bad.timeout_seconds = -2.0;
  EXPECT_THROW(cluster.set_fault_injector({}, bad), std::invalid_argument);
}

TEST(Cluster, CommBytesMatchRingFormula) {
  Cluster cluster = make_cluster(4, 14);
  optim::SGD opt(0.1f);
  const auto result = cluster.step(make_batch(8, 2), opt);
  const double model_bytes =
      static_cast<double>(cluster.replica(0).num_params()) * 4.0;
  EXPECT_DOUBLE_EQ(result.comm_bytes_per_gpu, 2.0 * 3.0 / 4.0 * model_bytes);
  EXPECT_GT(result.comm_time_modeled, 0.0);
  EXPECT_DOUBLE_EQ(cluster.update_bytes(), result.comm_bytes_per_gpu);
}

TEST(Cluster, LossDecreasesOverSteps) {
  Cluster cluster = make_cluster(2, 15);
  optim::SGD opt(0.1f, 0.9f);
  data::Batch batch = make_batch(12, 5);
  double first = 0, last = 0;
  for (int step = 0; step < 15; ++step) {
    const auto r = cluster.step(batch, opt);
    if (step == 0) first = r.loss;
    last = r.loss;
  }
  EXPECT_LT(last, first);
}


TEST(Cluster, ReconfigurationKeepsReplicasConsistent) {
  // Data-parallel PruneTrain: every replica prunes deterministically from
  // identical weights, so reconfiguring each replica independently leaves
  // the cluster consistent and training proceeds on the smaller model.
  models::ModelConfig mc;
  mc.image_h = 8;
  mc.image_w = 8;
  mc.classes = 4;
  mc.width_mult = 0.5f;
  std::vector<graph::Network> nets;
  for (int i = 0; i < 2; ++i) nets.push_back(models::build_resnet_basic(8, mc));
  Cluster cluster(std::move(nets), spec_for(2));

  // Kill one stage-variable channel identically on both replicas (writers
  // and readers), as group lasso would.
  for (int r = 0; r < 2; ++r) {
    graph::Network& net = cluster.replica(r);
    const auto& blk = net.info.blocks[0];
    auto& stem = net.layer_as<nn::Conv2d>(net.info.first_conv);
    auto& c1 = net.layer_as<nn::Conv2d>(blk.path_convs[0]);
    auto& c2 = net.layer_as<nn::Conv2d>(blk.path_convs[1]);
    const std::int64_t len0 = stem.in_channels() * 9;
    for (std::int64_t q = 0; q < len0; ++q) stem.weight().value.data()[q] = 0.f;
    const std::int64_t rs = 9;
    for (std::int64_t k = 0; k < c1.out_channels(); ++k) {
      for (std::int64_t q = 0; q < rs; ++q) {
        c1.weight().value.data()[(k * c1.in_channels()) * rs + q] = 0.f;
      }
    }
    const std::int64_t len2 = c2.in_channels() * rs;
    for (std::int64_t q = 0; q < len2; ++q) c2.weight().value.data()[q] = 0.f;
    // Readers of the stage var in the next block.
    const auto& blk1 = net.info.blocks[1];
    auto& n1 = net.layer_as<nn::Conv2d>(blk1.path_convs[0]);
    for (std::int64_t k = 0; k < n1.out_channels(); ++k) {
      for (std::int64_t q = 0; q < rs; ++q) {
        n1.weight().value.data()[(k * n1.in_channels()) * rs + q] = 0.f;
      }
    }
    auto& sc = net.layer_as<nn::Conv2d>(blk1.shortcut_conv);
    for (std::int64_t k = 0; k < sc.out_channels(); ++k) {
      sc.weight().value.data()[k * sc.in_channels()] = 0.f;
    }
    prune::Reconfigurer rec(net, 1e-4f);
    const auto stats = rec.reconfigure();
    EXPECT_TRUE(stats.changed);
  }

  // Replica structures must agree, and training must still work.
  EXPECT_EQ(cluster.replica(0).num_params(), cluster.replica(1).num_params());
  optim::SGD opt(0.05f, 0.9f);
  Rng rng(77);
  data::Batch batch;
  batch.images = Tensor::randn({8, 3, 8, 8}, rng);
  for (int i = 0; i < 8; ++i) batch.labels.push_back(i % 4);
  const auto result = cluster.step(batch, opt);
  EXPECT_TRUE(std::isfinite(result.loss));
  auto p0 = cluster.replica(0).params();
  auto p1 = cluster.replica(1).params();
  for (std::size_t i = 0; i < p0.size(); ++i) {
    for (std::int64_t q = 0; q < p0[i]->value.numel(); ++q) {
      ASSERT_EQ(p0[i]->value.data()[q], p1[i]->value.data()[q]);
    }
  }
}

}  // namespace
}  // namespace pt::dist
