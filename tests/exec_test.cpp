// Execution-context tests (`ctest -L exec`): the ThreadPool's static
// partition and determinism contract (N-thread results bitwise-identical
// to 1-thread, from a single GEMM up to a full pruning training run), the
// Workspace arena's steady-state reuse (heap-allocation counter flat once
// warm), context survival across prune/reconfigure, and the MemoryModel's
// exact prediction of the workspace high-water mark.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <tuple>
#include <vector>

#include "core/trainer.h"
#include "cost/memory.h"
#include "exec/context.h"
#include "models/builders.h"
#include "tensor/ops.h"

namespace pt::exec {
namespace {

bool bitwise_equal(const Tensor& a, const Tensor& b) {
  if (a.shape() != b.shape()) return false;
  return std::memcmp(a.data(), b.data(),
                     sizeof(float) * static_cast<std::size_t>(a.numel())) == 0;
}

/// Every parameter tensor (values and gradients) bitwise-identical.
void expect_params_bitwise(graph::Network& a, graph::Network& b) {
  auto pa = a.params();
  auto pb = b.params();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_TRUE(bitwise_equal(pa[i]->value, pb[i]->value))
        << "param value diverged: " << pa[i]->name;
    EXPECT_TRUE(bitwise_equal(pa[i]->grad, pb[i]->grad))
        << "param grad diverged: " << pa[i]->name;
  }
}

// --- ThreadPool -----------------------------------------------------------

TEST(ThreadPool, StaticPartitionCoversRangeExactly) {
  ThreadPool pool(4);
  ASSERT_EQ(pool.size(), 4);
  const std::int64_t n = 10;
  std::mutex mu;
  std::vector<std::tuple<std::int64_t, std::int64_t, int>> chunks;
  pool.parallel_for(n, [&](std::int64_t b, std::int64_t e, int c) {
    std::lock_guard<std::mutex> lock(mu);
    chunks.emplace_back(b, e, c);
  });
  ASSERT_EQ(chunks.size(), 4u);  // min(size, n) chunks
  std::sort(chunks.begin(), chunks.end(),
            [](const auto& x, const auto& y) {
              return std::get<2>(x) < std::get<2>(y);
            });
  // Chunk c is exactly [c*n/T, (c+1)*n/T) — a pure function of (n, T).
  for (int c = 0; c < 4; ++c) {
    EXPECT_EQ(std::get<0>(chunks[static_cast<std::size_t>(c)]), c * n / 4);
    EXPECT_EQ(std::get<1>(chunks[static_cast<std::size_t>(c)]), (c + 1) * n / 4);
    EXPECT_EQ(std::get<2>(chunks[static_cast<std::size_t>(c)]), c);
  }
}

TEST(ThreadPool, SmallRangeRunsAsSingleInlineChunk) {
  ThreadPool pool(4);
  int calls = 0;
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id ran_on;
  pool.parallel_for(1, [&](std::int64_t b, std::int64_t e, int c) {
    ++calls;
    ran_on = std::this_thread::get_id();
    EXPECT_EQ(b, 0);
    EXPECT_EQ(e, 1);
    EXPECT_EQ(c, 0);
  });
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(ran_on, caller);  // no worker handoff for a single chunk
}

TEST(ThreadPool, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(3);
  const std::int64_t inner_n = 8;
  // One row per outer chunk; the nested loop must fill the issuing chunk's
  // row completely (inline, on the issuing thread) without deadlocking.
  std::vector<std::vector<std::int64_t>> rows(
      3, std::vector<std::int64_t>(static_cast<std::size_t>(inner_n), -1));
  pool.parallel_for(3, [&](std::int64_t ob, std::int64_t oe, int oc) {
    (void)ob;
    (void)oe;
    const std::thread::id outer_thread = std::this_thread::get_id();
    pool.parallel_for(inner_n, [&](std::int64_t b, std::int64_t e, int) {
      EXPECT_EQ(std::this_thread::get_id(), outer_thread);
      for (std::int64_t i = b; i < e; ++i) {
        rows[static_cast<std::size_t>(oc)][static_cast<std::size_t>(i)] = i;
      }
    });
  });
  for (const auto& row : rows) {
    for (std::int64_t i = 0; i < inner_n; ++i) {
      EXPECT_EQ(row[static_cast<std::size_t>(i)], i);
    }
  }
}

TEST(ThreadPool, ExceptionPropagatesAndPoolSurvives) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(8,
                        [&](std::int64_t, std::int64_t, int) {
                          throw std::runtime_error("chunk failure");
                        }),
      std::runtime_error);
  // The pool must remain usable after a throwing job.
  std::atomic<std::int64_t> sum{0};
  pool.parallel_for(8, [&](std::int64_t b, std::int64_t e, int) {
    std::int64_t local = 0;
    for (std::int64_t i = b; i < e; ++i) local += i;
    sum.fetch_add(local, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 28);
  EXPECT_GE(pool.tasks_run(), 2u);
}

// --- Workspace ------------------------------------------------------------

TEST(Workspace, RoundUpCapacityIsSmallestFittingPowerOfTwo) {
  EXPECT_EQ(Workspace::round_up_capacity(0), 1u);
  EXPECT_EQ(Workspace::round_up_capacity(1), 1u);
  EXPECT_EQ(Workspace::round_up_capacity(3), 4u);
  EXPECT_EQ(Workspace::round_up_capacity(1024), 1024u);
  EXPECT_EQ(Workspace::round_up_capacity(1025), 2048u);
}

TEST(Workspace, SteadyStateLeasesPerformNoHeapAllocations) {
  Workspace ws;
  for (int step = 0; step < 10; ++step) {
    Workspace::Lease lease = ws.acquire(1000);
    ASSERT_NE(lease.data(), nullptr);
    EXPECT_EQ(lease.size(), 1000u);
    lease.data()[999] = 1.0f;  // the capacity is real, writable memory
  }
  const WorkspaceStats s = ws.stats();
  EXPECT_EQ(s.heap_allocations, 1u);  // first acquire only; 9 reuses
  EXPECT_EQ(s.leases, 10u);
  EXPECT_EQ(s.bytes_reserved, 1024u * sizeof(float));
  EXPECT_EQ(s.high_water_bytes, 1024u * sizeof(float));
}

TEST(Workspace, ConcurrentLeasesRaiseHighWater) {
  Workspace ws;
  {
    Workspace::Lease a = ws.acquire(100);
    Workspace::Lease b = ws.acquire(100);
    EXPECT_NE(a.data(), b.data());
  }
  EXPECT_EQ(ws.high_water_bytes(), 2u * 128u * sizeof(float));
  // Sequential re-acquire reuses both buffers at unchanged reservation.
  { Workspace::Lease c = ws.acquire(100); }
  const WorkspaceStats s = ws.stats();
  EXPECT_EQ(s.heap_allocations, 2u);
  EXPECT_EQ(s.bytes_reserved, 2u * 128u * sizeof(float));
}

TEST(Workspace, ClearWithOutstandingLeaseThrows) {
  Workspace ws;
  Workspace::Lease lease = ws.acquire(16);
  EXPECT_THROW(ws.clear(), std::logic_error);
  lease.release();
  ws.clear();  // fine once released
  const WorkspaceStats s = ws.stats();
  EXPECT_EQ(s.bytes_reserved, 0u);
  EXPECT_EQ(s.heap_allocations, 0u);
}

// --- Determinism: kernels -> layers -> network -> full run ----------------

TEST(Determinism, GemmBitwiseIdenticalAcrossThreadCounts) {
  const std::int64_t m = 23, n = 17, k = 11;
  Rng rng(42);
  Tensor a = Tensor::randn({m, k}, rng);
  Tensor b = Tensor::randn({k, n}, rng);
  Tensor c1({m, n});
  Tensor c4({m, n});
  // Non-zero beta exercises the accumulate path too.
  Tensor acc = Tensor::randn({m, n}, rng);
  std::copy(acc.data(), acc.data() + acc.numel(), c1.data());
  std::copy(acc.data(), acc.data() + acc.numel(), c4.data());

  ExecContext ctx1(1);
  ExecContext ctx4(4);
  gemm_nn(ctx1, m, n, k, 1.0f, a.data(), b.data(), 0.5f, c1.data());
  gemm_nn(ctx4, m, n, k, 1.0f, a.data(), b.data(), 0.5f, c4.data());
  EXPECT_TRUE(bitwise_equal(c1, c4));

  Tensor bt = Tensor::randn({n, k}, rng);
  Tensor d1({m, n});
  Tensor d4({m, n});
  gemm_nt(ctx1, m, n, k, 1.0f, a.data(), bt.data(), 0.0f, d1.data());
  gemm_nt(ctx4, m, n, k, 1.0f, a.data(), bt.data(), 0.0f, d4.data());
  EXPECT_TRUE(bitwise_equal(d1, d4));

  Tensor at = Tensor::randn({k, m}, rng);
  Tensor e1({m, n});
  Tensor e4({m, n});
  gemm_tn(ctx1, m, n, k, 1.0f, at.data(), b.data(), 0.0f, e1.data());
  gemm_tn(ctx4, m, n, k, 1.0f, at.data(), b.data(), 0.0f, e4.data());
  EXPECT_TRUE(bitwise_equal(e1, e4));
}

models::ModelConfig tiny_model(std::int64_t classes = 4) {
  models::ModelConfig cfg;
  cfg.image_h = 8;
  cfg.image_w = 8;
  cfg.classes = classes;
  cfg.width_mult = 0.25f;
  cfg.seed = 21;
  return cfg;
}

TEST(Determinism, NetworkForwardBackwardBitwiseAcrossThreadCounts) {
  // Two identically-seeded networks, one driven serially and one on a
  // 4-thread context: outputs, input gradients, and every parameter
  // gradient must match bit for bit.
  auto net1 = models::build_resnet_basic(8, tiny_model());
  auto net4 = models::build_resnet_basic(8, tiny_model());
  ExecContext ctx1(1);
  ExecContext ctx4(4);
  Rng rng(7);
  Tensor x = Tensor::randn({6, 3, 8, 8}, rng);

  net1.zero_grad();
  net4.zero_grad();
  Tensor y1 = net1.forward(ctx1, x, true);
  Tensor y4 = net4.forward(ctx4, x, true);
  EXPECT_TRUE(bitwise_equal(y1, y4));

  Tensor dy(y1.shape());
  for (std::int64_t i = 0; i < dy.numel(); ++i) {
    dy.data()[i] = 0.01f * static_cast<float>(i % 13) - 0.05f;
  }
  Tensor dx1 = net1.backward(ctx1, dy);
  Tensor dx4 = net4.backward(ctx4, dy);
  EXPECT_TRUE(bitwise_equal(dx1, dx4));
  expect_params_bitwise(net1, net4);
}

data::SyntheticSpec tiny_data(std::int64_t classes = 4) {
  data::SyntheticSpec spec;
  spec.name = "tiny";
  spec.classes = classes;
  spec.channels = 3;
  spec.height = 8;
  spec.width = 8;
  spec.train_samples = 96;
  spec.test_samples = 64;
  spec.noise = 0.4f;
  spec.max_shift = 1;
  spec.seed = 5;
  return spec;
}

core::TrainConfig pruning_run_cfg(std::int64_t threads) {
  core::TrainConfig cfg;
  cfg.epochs = 6;
  cfg.batch_size = 32;
  cfg.base_lr = 0.05f;
  cfg.weight_decay = 1e-4f;
  cfg.policy = core::PrunePolicy::kPruneTrain;
  cfg.reconfig_interval = 2;
  cfg.lasso_ratio = 0.3f;
  cfg.lasso_boost = 200.f;  // proxy time compression so pruning fires fast
  cfg.num_threads = threads;
  return cfg;
}

TEST(Determinism, FullPruningRunBitwiseIdenticalAcrossThreadCounts) {
  // The acceptance test of the whole API: an entire PruneTrain schedule —
  // SGD, lasso regularization, evaluation, and channel pruning with
  // network surgery — produces bit-identical numbers on 1 and 3 threads.
  auto data = data::SyntheticImageDataset(tiny_data());
  auto net1 = models::build_resnet_basic(8, tiny_model());
  auto net3 = models::build_resnet_basic(8, tiny_model());
  core::PruneTrainer t1(net1, data, pruning_run_cfg(1));
  core::PruneTrainer t3(net3, data, pruning_run_cfg(3));
  EXPECT_EQ(t1.exec_context().num_threads(), 1);
  EXPECT_EQ(t3.exec_context().num_threads(), 3);
  const auto r1 = t1.run();
  const auto r3 = t3.run();

  ASSERT_EQ(r1.epochs.size(), r3.epochs.size());
  bool reconfigured = false;
  for (std::size_t e = 0; e < r1.epochs.size(); ++e) {
    EXPECT_EQ(r1.epochs[e].train_loss, r3.epochs[e].train_loss) << "epoch " << e;
    EXPECT_EQ(r1.epochs[e].train_acc, r3.epochs[e].train_acc) << "epoch " << e;
    EXPECT_EQ(r1.epochs[e].test_acc, r3.epochs[e].test_acc) << "epoch " << e;
    EXPECT_EQ(r1.epochs[e].lasso_loss, r3.epochs[e].lasso_loss) << "epoch " << e;
    EXPECT_EQ(r1.epochs[e].channels_alive, r3.epochs[e].channels_alive);
    EXPECT_EQ(r1.epochs[e].reconfigured, r3.epochs[e].reconfigured);
    reconfigured = reconfigured || r1.epochs[e].reconfigured;
  }
  // The schedule must actually have pruned+reconfigured, so the bitwise
  // comparison above covers the workspace-rebuild path, not just dense SGD.
  EXPECT_TRUE(reconfigured);
  EXPECT_EQ(r1.final_test_acc, r3.final_test_acc);
  EXPECT_EQ(r1.final_channels, r3.final_channels);
  expect_params_bitwise(net1, net3);
}

// --- Workspace behaviour on the real hot path -----------------------------

TEST(ExecContext, SteadyStateEpochPerformsZeroWorkspaceAllocations) {
  auto net = models::build_resnet_basic(8, tiny_model());
  ExecContext ctx(2);
  Rng rng(11);
  Tensor x = Tensor::randn({4, 3, 8, 8}, rng);

  auto one_pass = [&] {
    net.zero_grad();
    Tensor y = net.forward(ctx, x, true);
    Tensor dy(y.shape());
    for (std::int64_t i = 0; i < dy.numel(); ++i) dy.data()[i] = 0.1f;
    net.backward(ctx, dy);
  };

  one_pass();  // warm-up grows the arena to its peak
  const WorkspaceStats warm = ctx.workspace().stats();
  EXPECT_GT(warm.heap_allocations, 0u);
  EXPECT_GT(warm.leases, 0u);

  for (int step = 0; step < 4; ++step) one_pass();
  const WorkspaceStats after = ctx.workspace().stats();
  EXPECT_EQ(after.heap_allocations, warm.heap_allocations)
      << "steady-state passes must not touch the heap";
  EXPECT_EQ(after.bytes_reserved, warm.bytes_reserved);
  EXPECT_EQ(after.leases, warm.leases * 5);  // but leases keep flowing
}

TEST(ExecContext, RebuildWorkspaceResetsArenaAndContextStaysUsable) {
  auto net = models::build_resnet_basic(8, tiny_model());
  ExecContext ctx(3);
  Rng rng(13);
  Tensor x = Tensor::randn({4, 3, 8, 8}, rng);
  net.forward(ctx, x, true);
  EXPECT_GT(ctx.workspace().bytes_reserved(), 0u);

  ctx.rebuild_workspace();  // what the trainer does after reconfigure()
  const WorkspaceStats fresh = ctx.workspace().stats();
  EXPECT_EQ(fresh.bytes_reserved, 0u);
  EXPECT_EQ(fresh.heap_allocations, 0u);
  EXPECT_EQ(fresh.high_water_bytes, 0u);

  // Same pool (worker threads survive), workspace re-leases on demand, and
  // the results stay bitwise equal to a serial context.
  EXPECT_EQ(ctx.num_threads(), 3);
  auto net_ref = models::build_resnet_basic(8, tiny_model());
  Tensor y = net.forward(ctx, x, true);
  Tensor y_ref = net_ref.forward(ExecContext::serial(), x, true);
  EXPECT_TRUE(bitwise_equal(y, y_ref));
  EXPECT_GT(ctx.workspace().bytes_reserved(), 0u);
}

// --- MemoryModel <-> Workspace agreement ----------------------------------

TEST(MemoryModel, WorkspacePredictionMatchesMeasuredHighWater) {
  // CIFAR-shaped ResNet: the model's workspace term must equal the
  // measured arena high-water mark *exactly* — size-class rounding and
  // concurrent-lease count included. Batch >= threads, per the model's
  // documented assumption.
  models::ModelConfig mc;
  mc.image_h = 32;
  mc.image_w = 32;
  mc.classes = 10;
  mc.width_mult = 0.25f;
  mc.seed = 3;
  auto net = models::build_resnet_basic(8, mc);
  ExecContext ctx(2);
  Rng rng(17);
  Tensor x = Tensor::randn({4, 3, 32, 32}, rng);

  net.zero_grad();
  Tensor y = net.forward(ctx, x, true);
  Tensor dy(y.shape());
  for (std::int64_t i = 0; i < dy.numel(); ++i) dy.data()[i] = 0.05f;
  net.backward(ctx, dy);

  const cost::MemoryModel model(net, Shape{3, 32, 32}, &ctx);
  ASSERT_GT(ctx.workspace().high_water_bytes(), 0u);
  EXPECT_DOUBLE_EQ(model.breakdown().workspace,
                   static_cast<double>(ctx.workspace().high_water_bytes()));

  // A serial context leases less concurrently but is still predicted
  // exactly (the model floors at the backward pass's col+dcol pair).
  auto net_s = models::build_resnet_basic(8, mc);
  ExecContext ctx_s(1);
  net_s.zero_grad();
  Tensor ys = net_s.forward(ctx_s, x, true);
  net_s.backward(ctx_s, dy);
  const cost::MemoryModel model_s(net_s, Shape{3, 32, 32}, &ctx_s);
  EXPECT_DOUBLE_EQ(model_s.breakdown().workspace,
                   static_cast<double>(ctx_s.workspace().high_water_bytes()));
}

}  // namespace
}  // namespace pt::exec
