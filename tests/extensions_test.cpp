// Tests for the paper's optional / extension features: fine-tuning after
// pruning, the size-normalized penalty ablation (Sec. 4.1), snapshot file
// persistence, and the square-root LR scaling rule.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <unistd.h>

#include "core/dynamic_batch.h"
#include "cost/memory.h"
#include "core/trainer.h"
#include "models/builders.h"
#include "nn/conv2d.h"
#include "prune/group_lasso.h"
#include "prune/snapshot.h"

namespace pt {
namespace {

data::SyntheticSpec small_data() {
  data::SyntheticSpec spec;
  spec.classes = 4;
  spec.height = 8;
  spec.width = 8;
  spec.train_samples = 96;
  spec.test_samples = 48;
  spec.noise = 0.6f;
  spec.seed = 5;
  return spec;
}

models::ModelConfig small_model() {
  models::ModelConfig cfg;
  cfg.image_h = 8;
  cfg.image_w = 8;
  cfg.classes = 4;
  cfg.width_mult = 0.25f;
  return cfg;
}

// --- Fine-tuning ---------------------------------------------------------------

TEST(FineTune, AddsEpochsWithoutRegularizationOrPruning) {
  data::SyntheticImageDataset ds(small_data());
  auto net = models::build_resnet_basic(8, small_model());
  core::TrainConfig cfg;
  cfg.epochs = 6;
  cfg.batch_size = 48;
  cfg.policy = core::PrunePolicy::kPruneTrain;
  cfg.lasso_boost = 100.f;
  cfg.reconfig_interval = 3;
  cfg.fine_tune_epochs = 4;
  core::PruneTrainer trainer(net, ds, cfg);
  const auto r = trainer.run();
  ASSERT_EQ(r.epochs.size(), 10u);
  // Fine-tune epochs keep the architecture fixed.
  const auto& ft0 = r.epochs[6];
  const auto& ft_last = r.epochs.back();
  EXPECT_EQ(ft0.channels_alive, ft_last.channels_alive);
  EXPECT_FALSE(ft_last.reconfigured);
  // Fine-tuning runs at the decayed LR, not the base LR.
  EXPECT_LE(ft0.lr, cfg.base_lr + 1e-6f);
}

TEST(FineTune, DensePolicyIgnoresFineTune) {
  data::SyntheticImageDataset ds(small_data());
  auto net = models::build_resnet_basic(8, small_model());
  core::TrainConfig cfg;
  cfg.epochs = 4;
  cfg.batch_size = 48;
  cfg.policy = core::PrunePolicy::kDense;
  cfg.fine_tune_epochs = 5;
  core::PruneTrainer trainer(net, ds, cfg);
  const auto r = trainer.run();
  EXPECT_EQ(r.epochs.size(), 4u);
}

// --- Size-normalized penalty ------------------------------------------------------

TEST(SizeNormalizedPenalty, MeanMultiplierIsOne) {
  // Normalization is chosen so the average multiplier is 1: for uniform
  // group sizes, normalized and global losses coincide.
  graph::Network net;
  Rng rng(1);
  const int input = net.add_input();
  auto conv = std::make_shared<nn::Conv2d>(4, 4, 3, 1, 1, rng);
  const int c = net.add_layer(conv, input);
  net.set_output(c);
  net.info.first_conv = -1;  // all groups have size 4*9 = 36
  prune::GroupLassoRegularizer reg(net);
  const double global = reg.loss();
  reg.set_size_normalized(true);
  EXPECT_NEAR(reg.loss(), global, 1e-9 * global);
}

TEST(SizeNormalizedPenalty, WeightsLargeGroupsMore) {
  // Two convs with very different group sizes: the size-normalized loss
  // must weight the large-group conv more than the global loss does.
  graph::Network net;
  Rng rng(2);
  const int input = net.add_input();
  auto small = std::make_shared<nn::Conv2d>(2, 2, 1, 1, 0, rng);
  const int n1 = net.add_layer(small, input);
  auto large = std::make_shared<nn::Conv2d>(2, 2, 5, 1, 2, rng);
  const int n2 = net.add_layer(large, n1);
  net.set_output(n2);
  net.info.first_conv = -1;

  prune::GroupLassoRegularizer reg(net);
  // Zero the large conv: remaining loss comes from the small conv only.
  auto& lw = net.layer_as<nn::Conv2d>(n2).weight();
  Tensor saved = lw.value.clone();
  lw.value.fill(0.f);
  const double small_only_global = reg.loss();
  reg.set_size_normalized(true);
  const double small_only_normalized = reg.loss();
  // The small conv's groups (size 2) fall below the mean group size, so
  // its normalized contribution is smaller.
  EXPECT_LT(small_only_normalized, small_only_global);
}

TEST(SizeNormalizedPenalty, GradientMatchesFiniteDifference) {
  graph::Network net;
  Rng rng(3);
  const int input = net.add_input();
  auto c1 = std::make_shared<nn::Conv2d>(2, 3, 1, 1, 0, rng);
  const int n1 = net.add_layer(c1, input);
  auto c2 = std::make_shared<nn::Conv2d>(3, 2, 3, 1, 1, rng);
  const int n2 = net.add_layer(c2, n1);
  net.set_output(n2);
  net.info.first_conv = n1;
  prune::GroupLassoRegularizer reg(net);
  reg.set_size_normalized(true);
  auto& w = net.layer_as<nn::Conv2d>(n2).weight();
  w.grad.fill(0.f);
  reg.add_gradients(0.7f);
  const float eps = 1e-3f;
  for (std::int64_t i = 0; i < w.value.numel(); i += 4) {
    const float orig = w.value.data()[i];
    w.value.data()[i] = orig + eps;
    const double lp = 0.7 * reg.loss();
    w.value.data()[i] = orig - eps;
    const double lm = 0.7 * reg.loss();
    w.value.data()[i] = orig;
    EXPECT_NEAR(w.grad.data()[i], (lp - lm) / (2 * eps), 3e-3) << "at " << i;
  }
}

TEST(SizeNormalizedPenalty, ProximalUsesScaledKappa) {
  // One conv, two very different group-size directions (out-groups of
  // size c*rs=18 vs in-groups of size k*rs=9... use first_conv to isolate
  // out-groups at two kernel sizes instead).
  graph::Network net;
  Rng rng(4);
  const int input = net.add_input();
  auto c1 = std::make_shared<nn::Conv2d>(1, 1, 1, 1, 0, rng);
  c1->weight().value.fill(2.f);  // group size 1, norm 2
  const int n1 = net.add_layer(c1, input);
  auto c2 = std::make_shared<nn::Conv2d>(1, 1, 3, 1, 1, rng);
  c2->weight().value.fill(2.f);  // group size 9, norm 6
  const int n2 = net.add_layer(c2, n1);
  net.set_output(n2);
  net.info.first_conv = -1;
  prune::GroupLassoRegularizer reg(net);
  reg.set_size_normalized(true);
  // Group sqrt sizes: conv1 groups (out+in) sqrt(1)=1,1; conv2 sqrt(9)=3,3.
  // Mean = 2. kappa multipliers: conv1 0.5x, conv2 1.5x.
  reg.apply_proximal(0.4f);
  const float w1 = net.layer_as<nn::Conv2d>(n1).weight().value.at(0, 0, 0, 0);
  // conv1: two sequential proxes (out then in) at kappa 0.2 each on norm 2:
  // 2 * (1 - 0.2/2) = 1.8, then 1.8 * (1 - 0.2/1.8) = 1.6.
  EXPECT_NEAR(w1, 1.6f, 1e-4f);
}

TEST(SizeNormalizedPenalty, TrainerWiresTheFlag) {
  data::SyntheticImageDataset ds(small_data());
  auto a = models::build_resnet_basic(8, small_model());
  auto b = models::build_resnet_basic(8, small_model());
  core::TrainConfig cfg;
  cfg.epochs = 2;
  cfg.batch_size = 48;
  cfg.policy = core::PrunePolicy::kPruneTrain;
  cfg.lasso_boost = 50.f;
  core::PruneTrainer ta(a, ds, cfg);
  const auto ra = ta.run();
  cfg.size_normalized_penalty = true;
  core::PruneTrainer tb(b, ds, cfg);
  const auto rb = tb.run();
  // Different penalty structure must produce different trajectories
  // (identical seeds otherwise).
  EXPECT_NE(ra.epochs.back().lasso_loss, rb.epochs.back().lasso_loss);
}

// --- Snapshot files ------------------------------------------------------------------

TEST(SnapshotFile, RoundTrip) {
  auto net = models::build_resnet_basic(8, small_model());
  const prune::Snapshot snap = prune::save_state(net);
  const std::string path = "/tmp/pt_snapshot_test.bin";
  prune::save_to_file(snap, path);
  const prune::Snapshot loaded = prune::load_from_file(path);
  ASSERT_EQ(loaded.values.size(), snap.values.size());
  for (std::size_t i = 0; i < snap.values.size(); ++i) {
    ASSERT_EQ(loaded.values[i], snap.values[i]);
  }
  // And the loaded snapshot restores into a fresh same-topology network.
  auto net2 = models::build_resnet_basic(8, small_model());
  EXPECT_NO_THROW(prune::load_state(net2, loaded));
  std::remove(path.c_str());
}

TEST(SnapshotFile, BadMagicRejected) {
  const std::string path = "/tmp/pt_snapshot_bad.bin";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    std::fputs("NOTASNAPSHOT", f);
    std::fclose(f);
  }
  EXPECT_THROW(prune::load_from_file(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(SnapshotFile, TruncatedPayloadRejected) {
  auto net = models::build_resnet_basic(8, small_model());
  const prune::Snapshot snap = prune::save_state(net);
  const std::string path = "/tmp/pt_snapshot_trunc.bin";
  prune::save_to_file(snap, path);
  // Truncate the file to half.
  {
    std::FILE* f = std::fopen(path.c_str(), "rb+");
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fclose(f);
    ASSERT_EQ(0, truncate(path.c_str(), size / 2));
  }
  EXPECT_THROW(prune::load_from_file(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(SnapshotFile, MissingFileRejected) {
  EXPECT_THROW(prune::load_from_file("/tmp/definitely_missing_snapshot.bin"),
               std::runtime_error);
}

// --- LR scaling rules ------------------------------------------------------------------

TEST(LrScalingRule, SqrtRule) {
  auto net = models::build_resnet_basic(8, small_model());
  cost::MemoryModel mem(net, {3, 8, 8});
  core::DynamicBatchConfig cfg;
  cfg.enabled = true;
  cfg.granularity = 16;
  cfg.max_batch = 256;
  cfg.device_memory_bytes = mem.training_bytes(64);
  cfg.lr_rule = core::LrScalingRule::kSqrt;
  core::DynamicBatchAdjuster adj(cfg);
  const auto a = adj.propose(net, {3, 8, 8}, 16);
  EXPECT_EQ(a.new_batch, 64);
  EXPECT_NEAR(a.lr_scale, 2.f, 1e-5f);  // sqrt(4x)
  cfg.lr_rule = core::LrScalingRule::kLinear;
  core::DynamicBatchAdjuster adj2(cfg);
  EXPECT_NEAR(adj2.propose(net, {3, 8, 8}, 16).lr_scale, 4.f, 1e-5f);
}

}  // namespace
}  // namespace pt
