// Network DAG tests: execution order, residual adds, whole-network gradient
// checks, surgery (bypass_add), and consumer maps.
#include <gtest/gtest.h>

#include <cmath>

#include "graph/network.h"
#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/pool.h"

namespace pt::graph {
namespace {

/// Tiny residual net: stem conv -> [block: conv-bn | identity]-add -> gap -> fc.
Network make_tiny_resnet(Rng& rng, std::int64_t channels = 4) {
  Network net;
  const int input = net.add_input();
  auto stem = std::make_shared<nn::Conv2d>(2, channels, 3, 1, 1, rng);
  stem->set_name("stem");
  const int s = net.add_layer(stem, input);
  auto bn0 = std::make_shared<nn::BatchNorm2d>(channels);
  const int b0 = net.add_layer(bn0, s);
  auto relu0 = std::make_shared<nn::ReLU>();
  const int r0 = net.add_layer(relu0, b0);

  auto conv1 = std::make_shared<nn::Conv2d>(channels, channels, 3, 1, 1, rng);
  conv1->set_name("conv1");
  const int c1 = net.add_layer(conv1, r0);
  auto bn1 = std::make_shared<nn::BatchNorm2d>(channels);
  const int b1 = net.add_layer(bn1, c1);
  const int add = net.add_add(b1, r0);

  auto gap = std::make_shared<nn::GlobalAvgPool>();
  const int g = net.add_layer(gap, add);
  auto fc = std::make_shared<nn::Linear>(channels, 3, rng);
  const int f = net.add_layer(fc, g);
  net.set_output(f);
  net.info.first_conv = s;
  net.info.classifier = f;
  ResidualBlockInfo blk;
  blk.path_nodes = {c1, b1};
  blk.path_convs = {c1};
  blk.add_node = add;
  net.info.blocks.push_back(blk);
  return net;
}

TEST(Network, InputMustBeFirst) {
  Network net;
  net.add_input();
  EXPECT_THROW(net.add_input(), std::logic_error);
}

TEST(Network, ForwardShapes) {
  Rng rng(1);
  Network net = make_tiny_resnet(rng);
  Tensor x = Tensor::randn({2, 2, 6, 6}, rng);
  Tensor y = net.forward(x, false);
  EXPECT_EQ(y.shape(), (Shape{2, 3}));
}

TEST(Network, AddRequiresMatchingShapes) {
  Rng rng(2);
  Network net;
  const int input = net.add_input();
  auto c1 = std::make_shared<nn::Conv2d>(1, 2, 1, 1, 0, rng);
  auto c2 = std::make_shared<nn::Conv2d>(1, 3, 1, 1, 0, rng);
  const int a = net.add_layer(c1, input);
  const int b = net.add_layer(c2, input);
  const int add = net.add_add(a, b);
  net.set_output(add);
  Tensor x({1, 1, 2, 2});
  EXPECT_THROW(net.forward(x, false), std::logic_error);
}

TEST(Network, ResidualAddIsElementwiseSum) {
  Rng rng(3);
  Network net;
  const int input = net.add_input();
  // Two parallel 1x1 convs with known weights, then add.
  auto c1 = std::make_shared<nn::Conv2d>(1, 1, 1, 1, 0, rng);
  auto c2 = std::make_shared<nn::Conv2d>(1, 1, 1, 1, 0, rng);
  c1->weight().value.fill(2.f);
  c2->weight().value.fill(3.f);
  const int a = net.add_layer(c1, input);
  const int b = net.add_layer(c2, input);
  const int add = net.add_add(a, b);
  net.set_output(add);
  Tensor x = Tensor::full({1, 1, 2, 2}, 1.f);
  Tensor y = net.forward(x, false);
  EXPECT_FLOAT_EQ(y.at(0, 0, 0, 0), 5.f);
}

TEST(Network, WholeNetGradientCheck) {
  Rng rng(4);
  Network net = make_tiny_resnet(rng);
  Tensor x = Tensor::randn({2, 2, 5, 5}, rng);
  std::vector<std::int64_t> labels = {0, 2};
  nn::SoftmaxCrossEntropy loss;

  // Training-mode forward so the FD surface matches what backward
  // differentiates (batch norm uses batch statistics in training).
  auto loss_of = [&](const Tensor& input) {
    Tensor out = net.forward(input, true);
    nn::SoftmaxCrossEntropy l;
    return l.forward(out, labels);
  };

  Tensor out = net.forward(x, true);
  loss.forward(out, labels);
  net.zero_grad();
  Tensor dx = net.backward(loss.backward());

  const float eps = 1e-2f;
  for (std::int64_t i = 0; i < x.numel(); i += 7) {
    const float orig = x.data()[i];
    x.data()[i] = orig + eps;
    const double lp = loss_of(x);
    x.data()[i] = orig - eps;
    const double lm = loss_of(x);
    x.data()[i] = orig;
    const double fd = (lp - lm) / (2 * eps);
    EXPECT_NEAR(dx.data()[i], fd, 3e-2 * std::max(1.0, std::fabs(fd)))
        << "at " << i;
  }
}

TEST(Network, ParamGradientCheckThroughResidual) {
  Rng rng(5);
  Network net = make_tiny_resnet(rng);
  Tensor x = Tensor::randn({2, 2, 5, 5}, rng);
  std::vector<std::int64_t> labels = {1, 0};
  nn::SoftmaxCrossEntropy loss;
  Tensor out = net.forward(x, true);
  loss.forward(out, labels);
  net.zero_grad();
  net.backward(loss.backward());

  const float eps = 1e-2f;
  for (nn::Param* p : net.params()) {
    const std::int64_t stride = std::max<std::int64_t>(1, p->value.numel() / 16);
    for (std::int64_t i = 0; i < p->value.numel(); i += stride) {
      // Training-mode forward: the FD surface must include batch-norm's
      // batch statistics, which is what backward differentiates.
      const float orig = p->value.data()[i];
      p->value.data()[i] = orig + eps;
      Tensor o1 = net.forward(x, true);
      nn::SoftmaxCrossEntropy l1;
      const double lp = l1.forward(o1, labels);
      p->value.data()[i] = orig - eps;
      Tensor o2 = net.forward(x, true);
      nn::SoftmaxCrossEntropy l2;
      const double lm = l2.forward(o2, labels);
      p->value.data()[i] = orig;
      const double fd = (lp - lm) / (2 * eps);
      EXPECT_NEAR(p->grad.data()[i], fd, 4e-2 * std::max(0.5, std::fabs(fd)))
          << "param grad at " << i;
    }
  }
}

TEST(Network, BackwardWithoutTrainingForwardThrows) {
  Rng rng(6);
  Network net = make_tiny_resnet(rng);
  Tensor x = Tensor::randn({1, 2, 5, 5}, rng);
  net.forward(x, false);
  EXPECT_THROW(net.backward(Tensor({1, 3})), std::logic_error);
}

TEST(Network, BypassAddRewiresConsumersAndKillsNodes) {
  Rng rng(7);
  Network net = make_tiny_resnet(rng);
  const ResidualBlockInfo& blk = net.info.blocks[0];
  // Remove the residual path entirely: output should equal shortcut path.
  const int shortcut_src = net.node(blk.add_node).inputs[1];
  std::vector<int> dead = blk.path_nodes;
  net.bypass_add(blk.add_node, shortcut_src, dead);

  for (int id : dead) EXPECT_FALSE(net.is_live(id));
  EXPECT_FALSE(net.is_live(blk.add_node));

  Tensor x = Tensor::randn({1, 2, 5, 5}, rng);
  Tensor y = net.forward(x, false);  // must still run
  EXPECT_EQ(y.shape(), (Shape{1, 3}));
  // Conv1's params no longer appear.
  for (nn::Param* p : net.params()) {
    EXPECT_EQ(p->name.find("conv1"), std::string::npos);
  }
}

TEST(Network, BypassAddTrainingStillWorks) {
  Rng rng(8);
  Network net = make_tiny_resnet(rng);
  const ResidualBlockInfo& blk = net.info.blocks[0];
  const int shortcut_src = net.node(blk.add_node).inputs[1];
  net.bypass_add(blk.add_node, shortcut_src, blk.path_nodes);
  Tensor x = Tensor::randn({2, 2, 5, 5}, rng);
  nn::SoftmaxCrossEntropy loss;
  Tensor out = net.forward(x, true);
  loss.forward(out, {0, 1});
  net.zero_grad();
  Tensor dx = net.backward(loss.backward());
  EXPECT_EQ(dx.shape(), x.shape());
}

TEST(Network, ConsumerMap) {
  Rng rng(9);
  Network net = make_tiny_resnet(rng);
  auto consumers = net.consumer_map();
  // The stem ReLU output feeds both conv1 and the add (short-cut).
  const int r0 = 3;  // input=0, stem=1, bn=2, relu=3
  EXPECT_EQ(consumers[r0].size(), 2u);
}

TEST(Network, NumParamsCountsLiveOnly) {
  Rng rng(10);
  Network net = make_tiny_resnet(rng, 4);
  const std::int64_t before = net.num_params();
  const ResidualBlockInfo& blk = net.info.blocks[0];
  const int shortcut_src = net.node(blk.add_node).inputs[1];
  net.bypass_add(blk.add_node, shortcut_src, blk.path_nodes);
  EXPECT_LT(net.num_params(), before);
}

TEST(Network, NodesOfTypeFindsConvs) {
  Rng rng(11);
  Network net = make_tiny_resnet(rng);
  const auto convs = net.nodes_of_type<nn::Conv2d>();
  EXPECT_EQ(convs.size(), 2u);
  EXPECT_NO_THROW(net.layer_as<nn::Conv2d>(convs[0]));
  EXPECT_THROW(net.layer_as<nn::Linear>(convs[0]), std::logic_error);
}

TEST(Network, GradientFlowsThroughBothResidualArms) {
  // With y = f(x) + x, dL/dx must include both the identity path and the
  // path through f. Compare against a net with the shortcut removed.
  Rng rng(12);
  Network net = make_tiny_resnet(rng);
  Tensor x = Tensor::randn({1, 2, 5, 5}, rng);
  nn::SoftmaxCrossEntropy loss;
  Tensor out = net.forward(x, true);
  loss.forward(out, {0});
  net.zero_grad();
  Tensor dx_res = net.backward(loss.backward());
  double norm = 0;
  for (float v : dx_res.span()) norm += std::fabs(v);
  EXPECT_GT(norm, 0.0);
}

}  // namespace
}  // namespace pt::graph
