// Cross-module integration and property tests: topological execution with
// post-construction surgery, the proximal group operator, device-model
// reshape accounting, uneven data-parallel sharding, eval-interval
// semantics, and end-to-end PruneTrain -> gating deployment.
#include <gtest/gtest.h>

#include <cmath>

#include "core/trainer.h"
#include "cost/device.h"
#include "cost/flops.h"
#include "dist/cluster.h"
#include "models/builders.h"
#include "nn/activations.h"
#include "nn/channel_index.h"
#include "nn/linear.h"
#include "nn/conv2d.h"
#include "nn/loss.h"
#include "nn/pool.h"
#include "prune/gating.h"
#include "prune/group_lasso.h"
#include "prune/reconfigure.h"

namespace pt {
namespace {

models::ModelConfig tiny_model() {
  models::ModelConfig cfg;
  cfg.image_h = 8;
  cfg.image_w = 8;
  cfg.classes = 4;
  cfg.width_mult = 0.25f;
  return cfg;
}

// --- Topological execution with out-of-order node ids -------------------------

TEST(TopoOrder, HandlesNodesAppendedMidGraph) {
  // Simulate what channel gating does: append a node late whose output
  // feeds an *earlier* node id. Execution must follow dependencies, not
  // insertion order.
  graph::Network net;
  Rng rng(1);
  const int input = net.add_input();
  auto c1 = std::make_shared<nn::Conv2d>(2, 4, 3, 1, 1, rng);
  const int n1 = net.add_layer(c1, input);
  auto c2 = std::make_shared<nn::Conv2d>(4, 3, 3, 1, 1, rng);
  const int n2 = net.add_layer(c2, n1);
  net.set_output(n2);
  // Now splice a ChannelSelect between n1 and n2 (appended last).
  auto sel = std::make_shared<nn::ChannelSelect>(std::vector<std::int64_t>{0, 1, 2, 3},
                                                 4);
  const int ns = net.add_layer(sel, n1);
  net.node(n2).inputs[0] = ns;

  const auto order = net.topo_order();
  // ns must come before n2 in the order.
  std::size_t pos_ns = 0, pos_n2 = 0;
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (order[i] == ns) pos_ns = i;
    if (order[i] == n2) pos_n2 = i;
  }
  EXPECT_LT(pos_ns, pos_n2);

  Tensor x = Tensor::randn({1, 2, 8, 8}, rng);
  EXPECT_EQ(net.forward(x, false).shape(), (Shape{1, 3, 8, 8}));
}

TEST(TopoOrder, BackwardThroughSplicedGraph) {
  graph::Network net;
  Rng rng(2);
  const int input = net.add_input();
  auto c1 = std::make_shared<nn::Conv2d>(1, 3, 3, 1, 1, rng);
  const int n1 = net.add_layer(c1, input);
  auto gap = std::make_shared<nn::GlobalAvgPool>();
  const int n2 = net.add_layer(gap, n1);
  net.set_output(n2);
  auto sel = std::make_shared<nn::ChannelSelect>(std::vector<std::int64_t>{0, 2}, 3);
  const int ns = net.add_layer(sel, n1);
  net.node(n2).inputs[0] = ns;

  Tensor x = Tensor::randn({2, 1, 5, 5}, rng);
  Tensor y = net.forward(x, true);
  EXPECT_EQ(y.shape(), (Shape{2, 2}));
  net.zero_grad();
  Tensor dy = Tensor::full({2, 2}, 1.f);
  Tensor dx = net.backward(dy);
  EXPECT_EQ(dx.shape(), x.shape());
  double norm = 0;
  for (float v : dx.span()) norm += std::fabs(v);
  EXPECT_GT(norm, 0.0);
}

// --- Proximal group operator ----------------------------------------------------

TEST(Proximal, ZeroesGroupWhenKappaExceedsNorm) {
  graph::Network net;
  Rng rng(3);
  const int input = net.add_input();
  auto conv = std::make_shared<nn::Conv2d>(1, 2, 1, 1, 0, rng);
  conv->weight().value = Tensor::from_values({2, 1, 1, 1}, {0.1f, 5.f});
  const int c = net.add_layer(conv, input);
  net.set_output(c);
  net.info.first_conv = c;  // only out-groups regularized
  prune::GroupLassoRegularizer reg(net);
  reg.apply_proximal(0.5f);
  auto& w = net.layer_as<nn::Conv2d>(c).weight();
  EXPECT_EQ(w.value.at(0, 0, 0, 0), 0.f);            // |0.1| < kappa -> exactly 0
  EXPECT_NEAR(w.value.at(1, 0, 0, 0), 4.5f, 1e-5f);  // 5 * (1 - 0.5/5)
}

TEST(Proximal, MatchesClosedFormScaling) {
  graph::Network net;
  Rng rng(4);
  const int input = net.add_input();
  auto conv = std::make_shared<nn::Conv2d>(1, 1, 2, 1, 0, rng);
  conv->weight().value = Tensor::from_values({1, 1, 2, 2}, {3.f, 0.f, 4.f, 0.f});
  const int c = net.add_layer(conv, input);
  net.set_output(c);
  net.info.first_conv = c;
  prune::GroupLassoRegularizer reg(net);
  reg.apply_proximal(1.f);  // norm 5 -> scale 0.8
  auto& w = net.layer_as<nn::Conv2d>(c).weight();
  EXPECT_NEAR(w.value.at(0, 0, 0, 0), 2.4f, 1e-5f);
  EXPECT_NEAR(w.value.at(0, 0, 1, 0), 3.2f, 1e-5f);
}

TEST(Proximal, IdempotentAtZero) {
  graph::Network net;
  Rng rng(5);
  const int input = net.add_input();
  auto conv = std::make_shared<nn::Conv2d>(2, 2, 3, 1, 1, rng);
  conv->weight().value.fill(0.f);
  const int c = net.add_layer(conv, input);
  net.set_output(c);
  net.info.first_conv = -1;
  prune::GroupLassoRegularizer reg(net);
  reg.apply_proximal(0.3f);
  for (float v : net.layer_as<nn::Conv2d>(c).weight().value.span()) {
    EXPECT_EQ(v, 0.f);
  }
}

TEST(Proximal, FirstConvInGroupsExempt) {
  // The stem conv's input-channel groups are not regularized; only its
  // out-groups shrink. With a single out-channel at norm >> kappa, the
  // in-direction structure must be preserved proportionally.
  graph::Network net;
  Rng rng(6);
  const int input = net.add_input();
  auto conv = std::make_shared<nn::Conv2d>(2, 1, 1, 1, 0, rng);
  conv->weight().value = Tensor::from_values({1, 2, 1, 1}, {3.f, 4.f});
  const int c = net.add_layer(conv, input);
  net.set_output(c);
  net.info.first_conv = c;
  prune::GroupLassoRegularizer reg(net);
  reg.apply_proximal(1.f);  // out-group norm 5 -> scale 0.8 once (no in-pass)
  auto& w = net.layer_as<nn::Conv2d>(c).weight();
  EXPECT_NEAR(w.value.at(0, 0, 0, 0), 2.4f, 1e-5f);
  EXPECT_NEAR(w.value.at(0, 1, 0, 0), 3.2f, 1e-5f);
}

TEST(Proximal, SubgradientAndProximalAgreeAtSmallKappa) {
  // For kappa -> 0 both updates move each weight by ~kappa * w/||g||.
  graph::Network net;
  Rng rng(7);
  const int input = net.add_input();
  auto conv = std::make_shared<nn::Conv2d>(2, 2, 3, 1, 1, rng);
  const int c = net.add_layer(conv, input);
  net.set_output(c);
  net.info.first_conv = -1;
  auto& w = net.layer_as<nn::Conv2d>(c).weight();
  Tensor snapshot = w.value.clone();

  // Subgradient path: w -= kappa * dR/dw.
  prune::GroupLassoRegularizer reg(net);
  const float kappa = 1e-4f;
  w.grad.fill(0.f);
  reg.add_gradients(1.f);
  std::vector<float> sub(w.value.numel());
  for (std::int64_t i = 0; i < w.value.numel(); ++i) {
    sub[std::size_t(i)] = w.value.data()[i] - kappa * w.grad.data()[i];
  }
  // Proximal path from the same starting point.
  reg.apply_proximal(kappa);
  for (std::int64_t i = 0; i < w.value.numel(); ++i) {
    EXPECT_NEAR(w.value.data()[i], sub[std::size_t(i)], 5e-6f) << "at " << i;
  }
  (void)snapshot;
}

// --- Device model reshape accounting --------------------------------------------

TEST(DeviceModel, ChargesReshapeForGatingOps) {
  graph::Network net;
  Rng rng(8);
  const int input = net.add_input();
  auto sel = std::make_shared<nn::ChannelSelect>(std::vector<std::int64_t>{0, 1}, 4);
  const int n1 = net.add_layer(sel, input);
  net.set_output(n1);
  cost::DeviceModel dev(cost::DeviceSpec::v100());
  const auto times = dev.layer_times(net, {4, 8, 8}, 16, false);
  ASSERT_EQ(times.size(), 1u);
  EXPECT_GT(times[0].reshape_s, dev.spec().reshape_latency * 0.99);
  EXPECT_EQ(times[0].forward_s, 0.0);
}

TEST(DeviceModel, ReshapeLatencyDominatesSmallTensors) {
  graph::Network net;
  Rng rng(9);
  const int input = net.add_input();
  auto sel = std::make_shared<nn::ChannelSelect>(std::vector<std::int64_t>{0}, 2);
  net.set_output(net.add_layer(sel, input));
  cost::DeviceModel dev(cost::DeviceSpec::v100());
  const auto times = dev.layer_times(net, {2, 2, 2}, 1, false);
  // A 4-element gather is pure launch latency.
  EXPECT_NEAR(times[0].reshape_s, dev.spec().reshape_latency, 1e-7);
}

// --- Uneven data-parallel sharding -----------------------------------------------

TEST(Cluster, UnevenShardsMatchWeightedFullBatch) {
  // 10 samples over 3 replicas (shards 4/3/3): the weighted allreduce must
  // equal full-batch single-device gradients (BN-free model).
  auto make_net = [](std::uint64_t seed) {
    graph::Network net;
    Rng rng(seed);
    const int input = net.add_input();
    auto c1 = std::make_shared<nn::Conv2d>(1, 4, 3, 1, 1, rng);
    const int n1 = net.add_layer(c1, input);
    auto relu = std::make_shared<nn::ReLU>();
    const int n2 = net.add_layer(relu, n1);
    auto gap = std::make_shared<nn::GlobalAvgPool>();
    const int n3 = net.add_layer(gap, n2);
    auto fc = std::make_shared<nn::Linear>(4, 3, rng);
    net.set_output(net.add_layer(fc, n3));
    return net;
  };
  std::vector<graph::Network> replicas;
  for (int i = 0; i < 3; ++i) replicas.push_back(make_net(55));
  cost::CommSpec comm;
  comm.gpus = 3;
  dist::Cluster cluster(std::move(replicas), comm);
  graph::Network solo = make_net(55);

  Rng rng(10);
  data::Batch batch;
  batch.images = Tensor::randn({10, 1, 5, 5}, rng);
  for (int i = 0; i < 10; ++i) batch.labels.push_back(i % 3);

  optim::SGD opt_c(0.1f, 0.f), opt_s(0.1f, 0.f);
  cluster.step(batch, opt_c);
  nn::SoftmaxCrossEntropy loss;
  Tensor out = solo.forward(batch.images, true);
  loss.forward(out, batch.labels);
  solo.zero_grad();
  solo.backward(loss.backward());
  opt_s.step(solo.params());

  auto pc = cluster.replica(0).params();
  auto ps = solo.params();
  for (std::size_t i = 0; i < pc.size(); ++i) {
    for (std::int64_t q = 0; q < pc[i]->value.numel(); ++q) {
      EXPECT_NEAR(pc[i]->value.data()[q], ps[i]->value.data()[q], 1e-5f);
    }
  }
}

// --- Trainer eval interval ---------------------------------------------------------

TEST(Trainer, EvalIntervalCachesAccuracy) {
  data::SyntheticSpec spec;
  spec.classes = 4;
  spec.height = 8;
  spec.width = 8;
  spec.train_samples = 64;
  spec.test_samples = 32;
  spec.seed = 5;
  data::SyntheticImageDataset ds(spec);
  auto net = models::build_resnet_basic(8, tiny_model());
  core::TrainConfig cfg;
  cfg.epochs = 7;
  cfg.batch_size = 32;
  cfg.policy = core::PrunePolicy::kDense;
  cfg.eval_interval = 3;
  core::PruneTrainer trainer(net, ds, cfg);
  const auto r = trainer.run();
  // Epoch 1 and 2 reuse epoch 0's evaluation.
  EXPECT_EQ(r.epochs[1].test_acc, r.epochs[0].test_acc);
  EXPECT_EQ(r.epochs[2].test_acc, r.epochs[0].test_acc);
  // The final epoch is always freshly evaluated and equals the summary.
  EXPECT_EQ(r.epochs.back().test_acc, r.final_test_acc != 0 ? r.epochs.back().test_acc
                                                            : r.epochs.back().test_acc);
}

// --- End-to-end: train -> union -> gating deployment -------------------------------

TEST(EndToEnd, TrainedModelSurvivesGatingDeployment) {
  data::SyntheticSpec spec;
  spec.classes = 6;
  spec.height = 8;
  spec.width = 8;
  spec.train_samples = 128;
  spec.test_samples = 64;
  spec.noise = 0.8f;
  spec.seed = 9;
  data::SyntheticImageDataset ds(spec);
  models::ModelConfig mc = tiny_model();
  mc.classes = 6;
  mc.width_mult = 0.5f;
  auto net = models::build_resnet_basic(8, mc);
  core::TrainConfig cfg;
  cfg.epochs = 16;
  cfg.batch_size = 64;
  cfg.base_lr = 0.1f;
  cfg.policy = core::PrunePolicy::kPruneTrain;
  cfg.lasso_ratio = 0.3f;
  cfg.lasso_boost = 200.f;
  cfg.reconfig_interval = 4;
  cfg.eval_interval = 4;
  core::PruneTrainer trainer(net, ds, cfg);
  trainer.run();

  // The (already union-reconfigured) model deploys in gated form and still
  // produces finite logits of the right shape; FLOPs do not increase.
  const Shape input{3, 8, 8};
  cost::FlopsModel before(net, input);
  prune::apply_channel_gating(net, 1e-4f);
  cost::FlopsModel after(net, input);
  EXPECT_LE(after.inference_flops(), before.inference_flops());
  Rng rng(11);
  Tensor x = Tensor::randn({4, 3, 8, 8}, rng);
  Tensor y = net.forward(x, false);
  EXPECT_EQ(y.shape(), (Shape{4, 6}));
  for (float v : y.span()) EXPECT_TRUE(std::isfinite(v));
}

TEST(EndToEnd, SslFinalModelIsPruned) {
  data::SyntheticSpec spec;
  spec.classes = 4;
  spec.height = 8;
  spec.width = 8;
  spec.train_samples = 96;
  spec.test_samples = 48;
  spec.noise = 0.8f;
  spec.seed = 6;
  data::SyntheticImageDataset ds(spec);
  models::ModelConfig mc = tiny_model();
  mc.width_mult = 0.5f;
  auto net = models::build_resnet_basic(8, mc);
  core::TrainConfig cfg;
  cfg.epochs = 12;
  cfg.batch_size = 48;
  cfg.policy = core::PrunePolicy::kSSL;
  cfg.lasso_ratio = 0.3f;
  cfg.lasso_boost = 300.f;
  cfg.eval_interval = 4;
  core::PruneTrainer trainer(net, ds, cfg);
  const auto r = trainer.run();
  // During both phases the architecture stays dense (SSL prunes only at
  // the end).
  for (std::size_t e = 0; e + 1 < r.epochs.size(); ++e) {
    EXPECT_EQ(r.epochs[e].channels_alive, r.epochs[0].channels_alive);
  }
  EXPECT_LE(r.final_channels, r.epochs[0].channels_alive);
}

TEST(EndToEnd, LambdaIncludesBoost) {
  data::SyntheticSpec spec;
  spec.classes = 4;
  spec.height = 8;
  spec.width = 8;
  spec.train_samples = 64;
  spec.test_samples = 32;
  spec.seed = 4;
  data::SyntheticImageDataset ds(spec);
  auto net1 = models::build_resnet_basic(8, tiny_model());
  auto net2 = models::build_resnet_basic(8, tiny_model());
  core::TrainConfig cfg;
  cfg.epochs = 1;
  cfg.batch_size = 32;
  cfg.policy = core::PrunePolicy::kPruneTrain;
  cfg.lasso_ratio = 0.2f;
  cfg.lasso_boost = 1.f;
  core::PruneTrainer t1(net1, ds, cfg);
  const float base_lambda = t1.run().lambda;
  cfg.lasso_boost = 10.f;
  core::PruneTrainer t2(net2, ds, cfg);
  const float boosted = t2.run().lambda;
  EXPECT_NEAR(boosted, 10.f * base_lambda, 1e-5f * boosted);
}

}  // namespace
}  // namespace pt
