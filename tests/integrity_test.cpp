// Silent-data-corruption defense tests (ISSUE 7): state-digest
// determinism and sensitivity, cross-replica digest voting with in-place
// healing, the sdc-param / sdc-momentum / torn-ckpt fault kinds, the
// scrubbed checkpoint generation chain, and the end-to-end acceptance
// matrix — an injected finite bitflip on one replica is detected within
// one check interval and healed without a rollback (the healed run's
// final state is bitwise-identical to the fault-free run); a torn newest
// checkpoint makes recovery cascade to an older scrubbed generation; a
// vote with no strict majority escalates to the guardian.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cmath>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "ckpt/checkpoint.h"
#include "core/trainer.h"
#include "exec/context.h"
#include "models/builders.h"
#include "robust/fault.h"
#include "robust/health.h"
#include "robust/integrity.h"
#include "robust/recovery.h"

namespace pt {
namespace {

namespace fs = std::filesystem;

/// Fresh per-test scratch directory (pid-suffixed so the plain and .asan
/// binaries never collide under a concurrent ctest run).
fs::path scratch_dir(const std::string& tag) {
  const fs::path p = fs::temp_directory_path() /
                     ("pt_integrity_" + tag + "_" + std::to_string(::getpid()));
  fs::remove_all(p);
  fs::create_directories(p);
  return p;
}

data::SyntheticSpec pruning_data() {
  data::SyntheticSpec spec;
  spec.name = "tiny";
  spec.classes = 8;
  spec.channels = 3;
  spec.height = 8;
  spec.width = 8;
  spec.train_samples = 256;
  spec.test_samples = 128;
  spec.noise = 0.8f;
  spec.max_shift = 2;
  spec.seed = 5;
  return spec;
}

graph::Network small_net(std::uint64_t seed = 21) {
  models::ModelConfig mc;
  mc.image_h = 8;
  mc.image_w = 8;
  mc.classes = 8;
  mc.width_mult = 0.5f;
  mc.seed = seed;
  return models::build_resnet_basic(8, mc);
}

/// A short elastic PruneTrain run with the integrity monitor armed:
/// 3 replicas, a digest vote every 4 steps (= once per epoch at
/// batch_size 64 over 256 samples), per-epoch checkpoints, rollback
/// budget 2.
core::TrainConfig integrity_cfg(const std::string& dir) {
  core::TrainConfig cfg;
  cfg.policy = core::PrunePolicy::kPruneTrain;
  cfg.epochs = 6;
  cfg.batch_size = 64;
  cfg.base_lr = 0.1f;
  cfg.weight_decay = 1e-4f;
  cfg.lr_milestones = {3, 5};
  cfg.lasso_ratio = 0.3f;
  cfg.lasso_boost = 2000.f;  // proxy time compression; prunes by epoch 2
  cfg.reconfig_interval = 2;
  cfg.eval_interval = 2;
  cfg.checkpoint_dir = dir;
  cfg.max_rollbacks = 2;
  cfg.replicas = 3;
  cfg.sdc_check_interval = 4;
  return cfg;
}

/// Flips the low mantissa bit of one element of the first tensor carrying
/// `role` — a finite, silent perturbation the health monitor cannot see.
std::string flip_one_bit(graph::Network& net, nn::StateRole role) {
  for (const nn::StateEntry& e : net.state()) {
    if (e.role != role || e.tensor->numel() == 0) continue;
    std::uint32_t bits;
    std::memcpy(&bits, e.tensor->data(), sizeof(bits));
    bits ^= 1u;
    std::memcpy(e.tensor->data(), &bits, sizeof(bits));
    return e.name;
  }
  return "";
}

// ---------------------------------------------------------------------------
// State digests: deterministic, thread-invariant, sensitive to exactly the
// persistent state.

TEST(StateDigest, DeterministicAndThreadInvariant) {
  graph::Network a = small_net();
  graph::Network b = small_net();
  exec::ExecContext serial(1);
  exec::ExecContext pooled(4);

  const auto da = robust::compute_state_digest(a, serial);
  const auto db = robust::compute_state_digest(b, pooled);
  EXPECT_TRUE(da.comparable_with(db));
  EXPECT_EQ(da.state, db.state);
  EXPECT_EQ(da.topology, db.topology);
  ASSERT_EQ(da.tensors.size(), db.tensors.size());
  for (std::size_t i = 0; i < da.tensors.size(); ++i) {
    EXPECT_EQ(da.tensors[i].crc, db.tensors[i].crc) << da.tensors[i].name;
  }
  EXPECT_TRUE(da.diff(db).empty());
  // Wire size: one CRC word per tensor plus the two summary words.
  EXPECT_EQ(da.wire_bytes(),
            static_cast<std::int64_t>((da.tensors.size() + 2) * 4));
}

TEST(StateDigest, OneFlippedParamBitChangesTheDigestAndNamesTheTensor) {
  graph::Network a = small_net();
  graph::Network b = small_net();
  exec::ExecContext ctx(2);
  const std::string victim = flip_one_bit(b, nn::StateRole::kParam);
  ASSERT_FALSE(victim.empty());

  const auto da = robust::compute_state_digest(a, ctx);
  const auto db = robust::compute_state_digest(b, ctx);
  EXPECT_TRUE(da.comparable_with(db));  // same shapes — only bytes differ
  EXPECT_NE(da.state, db.state);
  const std::vector<std::string> bad = da.diff(db);
  ASSERT_EQ(bad.size(), 1u);
  EXPECT_EQ(bad[0], victim);
}

TEST(StateDigest, CoversMomentumButNotShardLocalOrTransientState) {
  graph::Network a = small_net();
  exec::ExecContext ctx(2);
  const auto before = robust::compute_state_digest(a, ctx);

  // Gradients are transient (rewritten every step) and excluded.
  ASSERT_FALSE(flip_one_bit(a, nn::StateRole::kGrad).empty());
  EXPECT_EQ(robust::compute_state_digest(a, ctx).state, before.state);

  // BN running statistics are shard-local under data parallelism — each
  // replica folds its own shard's batch stats — so they are excluded too
  // (an honest cluster would otherwise never vote unanimously).
  ASSERT_FALSE(flip_one_bit(a, nn::StateRole::kBuffer).empty());
  EXPECT_EQ(robust::compute_state_digest(a, ctx).state, before.state);

  // Momentum is replica-invariant optimizer state and covered.
  ASSERT_FALSE(flip_one_bit(a, nn::StateRole::kMomentum).empty());
  EXPECT_NE(robust::compute_state_digest(a, ctx).state, before.state);
}

TEST(StateDigest, TopologyStampMakesReconfiguredModelsIncomparable) {
  graph::Network a = small_net();
  models::ModelConfig mc;
  mc.image_h = 8;
  mc.image_w = 8;
  mc.classes = 8;
  mc.width_mult = 1.0f;  // different channel widths -> different shapes
  mc.seed = 21;
  graph::Network b = models::build_resnet_basic(8, mc);
  exec::ExecContext ctx(1);

  const auto da = robust::compute_state_digest(a, ctx);
  const auto db = robust::compute_state_digest(b, ctx);
  EXPECT_FALSE(da.comparable_with(db));
}

TEST(StateDigest, StrategyStateIsPartOfTheDigest) {
  graph::Network a = small_net();
  exec::ExecContext ctx(1);
  std::vector<prune::StrategyStateItem> s1(1);
  s1[0].name = "mask";
  s1[0].f32 = {1.f, 0.f, 1.f};
  std::vector<prune::StrategyStateItem> s2 = s1;
  s2[0].f32[1] = 1.f;  // a corrupted mask reroutes pruning silently

  const auto d1 = robust::compute_state_digest(a, ctx, &s1);
  const auto d2 = robust::compute_state_digest(a, ctx, &s2);
  EXPECT_TRUE(d1.comparable_with(d2));
  EXPECT_NE(d1.state, d2.state);
  const std::vector<std::string> bad = d1.diff(d2);
  ASSERT_EQ(bad.size(), 1u);
  EXPECT_EQ(bad[0], "strategy/mask");
}

TEST(IntegrityConfig, ValidatesAndSchedules) {
  robust::IntegrityConfig cfg;
  cfg.check_interval = -1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.check_interval = 4;
  EXPECT_NO_THROW(cfg.validate());

  robust::IntegrityMonitor mon(cfg);
  EXPECT_FALSE(mon.due(0));  // never before the first step
  EXPECT_FALSE(mon.due(3));
  EXPECT_TRUE(mon.due(4));
  EXPECT_TRUE(mon.due(8));
  robust::IntegrityMonitor off(robust::IntegrityConfig{});
  EXPECT_FALSE(off.due(4));
}

// ---------------------------------------------------------------------------
// Digest voting: unanimity, minority healing, no-quorum.

TEST(IntegrityMonitor, UnanimousVoteHealsNothing) {
  graph::Network r0 = small_net(), r1 = small_net(), r2 = small_net();
  exec::ExecContext ctx(2);
  robust::IntegrityMonitor mon(robust::IntegrityConfig{4});
  int heal_calls = 0;
  const auto out = mon.check_replicas(
      {{0, &r0}, {1, &r1}, {2, &r2}}, ctx, nullptr,
      [&](int, int) -> std::int64_t { ++heal_calls; return 0; });
  EXPECT_FALSE(out.mismatch);
  EXPECT_FALSE(out.no_quorum);
  EXPECT_TRUE(out.healed.empty());
  EXPECT_EQ(heal_calls, 0);
  // Modeled allgather: each of the 3 replicas sends its digest to the
  // other two.
  const auto one = robust::compute_state_digest(r0, ctx);
  EXPECT_EQ(out.digest_bytes, 3 * one.wire_bytes() * 2);
  EXPECT_EQ(mon.checks(), 1);
  EXPECT_EQ(mon.mismatches(), 0);
}

TEST(IntegrityMonitor, MinorityReplicaIsConvictedAndHealed) {
  graph::Network r0 = small_net(), r1 = small_net(), r2 = small_net();
  exec::ExecContext ctx(2);
  ASSERT_FALSE(flip_one_bit(r1, nn::StateRole::kParam).empty());

  robust::IntegrityMonitor mon(robust::IntegrityConfig{4});
  const auto heal = [&](int victim, int root) -> std::int64_t {
    // The trainer wires ElasticCluster::heal_replica here; the test heals
    // by the same full-state copy, replica-local.
    graph::Network* nets[] = {&r0, &r1, &r2};
    std::vector<nn::StateEntry> src = nets[root]->state();
    std::vector<nn::StateEntry> dst = nets[victim]->state();
    std::int64_t bytes = 0;
    for (std::size_t i = 0; i < src.size(); ++i) {
      std::memcpy(dst[i].tensor->data(), src[i].tensor->data(),
                  static_cast<std::size_t>(src[i].tensor->numel()) *
                      sizeof(float));
      bytes += src[i].tensor->numel() * 4;
    }
    return bytes;
  };
  const auto out =
      mon.check_replicas({{0, &r0}, {1, &r1}, {2, &r2}}, ctx, nullptr, heal);
  EXPECT_TRUE(out.mismatch);
  EXPECT_FALSE(out.no_quorum);
  ASSERT_EQ(out.healed.size(), 1u);
  EXPECT_EQ(out.healed[0], 1);
  EXPECT_EQ(out.healthy_root, 0);
  EXPECT_GT(out.heal_bytes, 0);
  EXPECT_NE(out.detail.find("replica 1"), std::string::npos);
  EXPECT_EQ(mon.mismatches(), 1);
  EXPECT_EQ(mon.heals(), 1);

  // After the heal all three replicas digest identically again.
  const auto d0 = robust::compute_state_digest(r0, ctx);
  const auto d1 = robust::compute_state_digest(r1, ctx);
  EXPECT_EQ(d0.state, d1.state);
}

TEST(IntegrityMonitor, EvenSplitIsNoQuorumAndHealsNothing) {
  graph::Network r0 = small_net(), r1 = small_net();
  exec::ExecContext ctx(1);
  ASSERT_FALSE(flip_one_bit(r1, nn::StateRole::kParam).empty());

  robust::IntegrityMonitor mon(robust::IntegrityConfig{4});
  int heal_calls = 0;
  const auto out = mon.check_replicas(
      {{0, &r0}, {1, &r1}}, ctx, nullptr,
      [&](int, int) -> std::int64_t { ++heal_calls; return 0; });
  EXPECT_TRUE(out.mismatch);
  EXPECT_TRUE(out.no_quorum);
  EXPECT_TRUE(out.healed.empty());
  EXPECT_EQ(heal_calls, 0);
  EXPECT_EQ(mon.heals(), 0);
}

TEST(IntegrityMonitor, SingleReplicaTriviallyPasses) {
  graph::Network r0 = small_net();
  exec::ExecContext ctx(1);
  robust::IntegrityMonitor mon(robust::IntegrityConfig{4});
  const auto out = mon.check_replicas({{0, &r0}}, ctx, nullptr,
                                      [](int, int) -> std::int64_t { return 0; });
  EXPECT_FALSE(out.mismatch);
  EXPECT_FALSE(out.no_quorum);
}

// ---------------------------------------------------------------------------
// The three new fault kinds.

TEST(FaultSpec, ParsesSdcAndTornCkptKinds) {
  const auto specs = robust::parse_fault_specs(
      "sdc-param:replica=1,step=3;sdc-momentum:replica=0,step=7,count=2;"
      "torn-ckpt:epoch=4");
  ASSERT_EQ(specs.size(), 3u);
  EXPECT_EQ(specs[0].kind, robust::FaultSpec::Kind::kSdcParam);
  EXPECT_EQ(specs[0].replica, 1);
  EXPECT_EQ(specs[0].step, 3);
  EXPECT_EQ(specs[1].kind, robust::FaultSpec::Kind::kSdcMomentum);
  EXPECT_EQ(specs[1].count, 2);
  EXPECT_EQ(specs[2].kind, robust::FaultSpec::Kind::kTornCkpt);
  EXPECT_EQ(specs[2].epoch, 4);
}

TEST(FaultSpec, HelpDocumentsTheSdcKinds) {
  const std::string help = robust::fault_spec_help();
  for (const char* kind : {"sdc-param", "sdc-momentum", "torn-ckpt"}) {
    EXPECT_NE(help.find(kind), std::string::npos) << kind;
  }
}

TEST(FaultSpec, RejectsSdcTargetingANonexistentReplica) {
  const auto specs = robust::parse_fault_specs("sdc-param:replica=3,step=1");
  EXPECT_THROW(robust::validate_fault_replicas(specs, 3),
               std::invalid_argument);
  EXPECT_NO_THROW(robust::validate_fault_replicas(specs, 4));
  // The trainer routes --fault-spec through the same check.
  core::TrainConfig cfg;
  cfg.replicas = 2;
  cfg.fault_spec = "sdc-param:replica=2,step=1";
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.fault_spec = "sdc-param:replica=1,step=1";
  EXPECT_NO_THROW(cfg.validate());
  // The new config knobs validate too.
  cfg = {};
  cfg.sdc_check_interval = -1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.keep_checkpoints = -2;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(FaultInjector, SdcParamFlipsExactlyOneElementAndStaysFinite) {
  graph::Network net = small_net();
  graph::Network ref = small_net();
  auto injector =
      robust::FaultInjector::from_string("sdc-param:replica=1,step=3", 11);
  EXPECT_FALSE(injector.corrupt_state(net, 2, 1));  // wrong step
  EXPECT_FALSE(injector.corrupt_state(net, 3, 0));  // wrong replica
  EXPECT_TRUE(injector.corrupt_state(net, 3, 1));
  EXPECT_FALSE(injector.corrupt_state(net, 3, 1));  // count=1: spent

  std::int64_t changed = 0;
  auto pn = net.params();
  auto pr = ref.params();
  ASSERT_EQ(pn.size(), pr.size());
  for (std::size_t i = 0; i < pn.size(); ++i) {
    for (std::int64_t q = 0; q < pn[i]->value.numel(); ++q) {
      const float v = pn[i]->value.data()[q];
      ASSERT_TRUE(std::isfinite(v));  // silent by construction
      if (v != pr[i]->value.data()[q]) ++changed;
    }
  }
  EXPECT_EQ(changed, 1);
}

TEST(FaultInjector, SdcMomentumHitsMomentumNotValues) {
  graph::Network net = small_net();
  // Give momentum a nonzero baseline so a flip is observable.
  for (const nn::StateEntry& e : net.state()) {
    if (e.role == nn::StateRole::kMomentum) {
      for (std::int64_t q = 0; q < e.tensor->numel(); ++q) {
        e.tensor->data()[q] = 0.5f;
      }
    }
  }
  graph::Network ref = small_net();
  auto injector =
      robust::FaultInjector::from_string("sdc-momentum:step=0", 7);
  EXPECT_TRUE(injector.corrupt_state(net, 0, 0));

  std::int64_t value_changed = 0, momentum_changed = 0;
  auto pn = net.params();
  auto pr = ref.params();
  for (std::size_t i = 0; i < pn.size(); ++i) {
    for (std::int64_t q = 0; q < pn[i]->value.numel(); ++q) {
      if (pn[i]->value.data()[q] != pr[i]->value.data()[q]) ++value_changed;
      if (pn[i]->momentum.data()[q] != 0.5f) ++momentum_changed;
      ASSERT_TRUE(std::isfinite(pn[i]->momentum.data()[q]));
    }
  }
  EXPECT_EQ(value_changed, 0);
  EXPECT_EQ(momentum_changed, 1);
}

TEST(FaultInjector, TornCkptTruncatesThroughTheCrcFooter) {
  const fs::path dir = scratch_dir("torn");
  graph::Network net = small_net();
  const std::string path = (dir / "ckpt.bin").string();
  ckpt::Checkpoint::capture(net).save(path);
  const auto full_size = fs::file_size(path);

  auto injector = robust::FaultInjector::from_string("torn-ckpt:epoch=2", 3);
  EXPECT_FALSE(injector.corrupt_checkpoint_files({path}, 1));
  EXPECT_TRUE(injector.corrupt_checkpoint_files({path}, 2));
  EXPECT_LT(fs::file_size(path), full_size);
  EXPECT_THROW(ckpt::Checkpoint::load(path), std::exception);
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Checkpoint generation chain + scrubber.

TEST(CheckpointScrubber, KeepLastKEvictsOldestFromDisk) {
  const fs::path dir = scratch_dir("chain");
  graph::Network net = small_net();
  ckpt::Checkpoint ck = ckpt::Checkpoint::capture(net);

  robust::CheckpointScrubber scrubber(2);
  EXPECT_THROW(robust::CheckpointScrubber(-1), std::invalid_argument);
  for (std::int64_t e = 1; e <= 4; ++e) {
    const std::string p =
        (dir / ("ckpt-epoch-" + std::to_string(e) + ".bin")).string();
    ck.save(p);
    scrubber.note_saved(p, e);
  }
  ASSERT_EQ(scrubber.generations().size(), 2u);
  EXPECT_EQ(scrubber.generations()[0].epoch, 3);
  EXPECT_EQ(scrubber.generations()[1].epoch, 4);
  EXPECT_EQ(scrubber.evicted(), 2);
  EXPECT_FALSE(fs::exists(dir / "ckpt-epoch-1.bin"));
  EXPECT_FALSE(fs::exists(dir / "ckpt-epoch-2.bin"));
  EXPECT_TRUE(fs::exists(dir / "ckpt-epoch-4.bin"));
  fs::remove_all(dir);
}

TEST(CheckpointScrubber, ScrubFlagsTornGenerationsAndCascades) {
  const fs::path dir = scratch_dir("scrub");
  graph::Network net = small_net();
  ckpt::Checkpoint ck = ckpt::Checkpoint::capture(net);
  exec::ExecContext ctx(2);

  robust::CheckpointScrubber scrubber(0);  // retain all
  std::vector<std::string> paths;
  for (std::int64_t e = 1; e <= 3; ++e) {
    const std::string p =
        (dir / ("ckpt-epoch-" + std::to_string(e) + ".bin")).string();
    ck.save(p);
    scrubber.note_saved(p, e);
    paths.push_back(p);
  }
  EXPECT_EQ(scrubber.scrub(ctx), 3);
  EXPECT_EQ(scrubber.newest_valid(), paths[2]);

  // Tear the newest file: the scrub verdict flips, newest_valid cascades.
  auto injector = robust::FaultInjector::from_string("torn-ckpt:count=0", 3);
  injector.corrupt_checkpoint_files({paths[2]}, 0);
  EXPECT_EQ(scrubber.scrub(ctx), 2);
  EXPECT_EQ(scrubber.newest_valid(), paths[1]);
  const robust::GenerationInfo* bad = scrubber.verdict(paths[2]);
  ASSERT_NE(bad, nullptr);
  EXPECT_TRUE(bad->scrubbed);
  EXPECT_FALSE(bad->valid);
  EXPECT_EQ(scrubber.verdict((dir / "unknown.bin").string()), nullptr);

  // find_rollback_target consults the ledger: the known-corrupt newest
  // generation is skipped without a load attempt, and the skip is counted.
  const robust::RollbackTarget target =
      robust::find_rollback_target(dir.string(), &scrubber);
  EXPECT_EQ(target.path, paths[1]);
  EXPECT_EQ(target.generation, 2);
  EXPECT_EQ(target.skipped_corrupt, 1);
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// End-to-end acceptance matrix.

TEST(Integrity, BitflipOnOneReplicaIsHealedBitwiseWithoutRollback) {
  auto data = data::SyntheticImageDataset(pruning_data());
  const fs::path clean_dir = scratch_dir("heal_clean");
  const fs::path fault_dir = scratch_dir("heal_fault");

  graph::Network clean_net = small_net();
  core::TrainConfig clean_cfg = integrity_cfg(clean_dir.string());
  core::PruneTrainer clean(clean_net, data, clean_cfg);
  const auto clean_result = clean.run();
  EXPECT_EQ(clean.recovery_report().rollbacks, 0);
  ASSERT_NE(clean.integrity_monitor(), nullptr);
  EXPECT_GT(clean.integrity_monitor()->checks(), 0);
  EXPECT_EQ(clean.integrity_monitor()->mismatches(), 0);

  // Same run with a finite bitflip planted in replica 1's parameters after
  // step 3's update. The digest vote after step 4 (interval 4, one full
  // epoch) convicts replica 1 before the next allreduce can average the
  // corruption into the majority, heals it in place from a voted-healthy
  // replica, and the rest of the run replays bitwise-identically — no
  // rollback burned, no steps lost.
  graph::Network fault_net = small_net();
  core::TrainConfig fault_cfg = integrity_cfg(fault_dir.string());
  fault_cfg.fault_spec = "sdc-param:replica=1,step=3";
  core::PruneTrainer faulty(fault_net, data, fault_cfg);
  const auto fault_result = faulty.run();

  const auto& report = faulty.recovery_report();
  EXPECT_EQ(report.faults_injected, 1);
  EXPECT_EQ(report.rollbacks, 0);  // healed, not rolled back
  ASSERT_NE(faulty.integrity_monitor(), nullptr);
  EXPECT_EQ(faulty.integrity_monitor()->mismatches(), 1);
  EXPECT_EQ(faulty.integrity_monitor()->heals(), 1);
  EXPECT_GT(faulty.integrity_monitor()->heal_bytes_total(), 0);
  bool saw_sdc = false;
  for (const robust::HealthEvent& ev : report.events) {
    if (ev.type == robust::EventType::kSdcDetected) saw_sdc = true;
    EXPECT_NE(ev.type, robust::EventType::kSdcNoQuorum);
  }
  EXPECT_TRUE(saw_sdc);

  // Bitwise acceptance: the healed run ends exactly where the fault-free
  // run does.
  EXPECT_DOUBLE_EQ(fault_result.epochs.back().train_loss,
                   clean_result.epochs.back().train_loss);
  EXPECT_DOUBLE_EQ(fault_result.final_test_acc, clean_result.final_test_acc);
  EXPECT_EQ(fault_result.final_channels, clean_result.final_channels);
  auto pf = fault_net.params();
  auto pc = clean_net.params();
  ASSERT_EQ(pf.size(), pc.size());
  for (std::size_t i = 0; i < pf.size(); ++i) {
    ASSERT_EQ(pf[i]->value.numel(), pc[i]->value.numel());
    for (std::int64_t q = 0; q < pf[i]->value.numel(); ++q) {
      ASSERT_EQ(pf[i]->value.data()[q], pc[i]->value.data()[q]);
    }
  }
  fs::remove_all(clean_dir);
  fs::remove_all(fault_dir);
}

TEST(Integrity, TornNewestCheckpointCascadesToOlderScrubbedGeneration) {
  // The epoch-4 save (numbered + latest) is torn on disk; a NaN fault then
  // forces a rollback. The scrubber has already flagged the torn numbered
  // file, so the search cascades past both damaged paths to
  // ckpt-epoch-3.bin and the trainer surfaces a kCheckpointCascade event.
  auto data = data::SyntheticImageDataset(pruning_data());
  const fs::path dir = scratch_dir("cascade");
  graph::Network net = small_net();
  core::TrainConfig cfg = integrity_cfg(dir.string());
  cfg.replicas = 1;
  cfg.sdc_check_interval = 0;
  cfg.fault_spec = "torn-ckpt:epoch=4;nan-grad:epoch=4,step=2";
  core::PruneTrainer trainer(net, data, cfg);
  const auto result = trainer.run();

  const auto& report = trainer.recovery_report();
  EXPECT_EQ(report.faults_injected, 2);
  EXPECT_EQ(report.rollbacks, 1);
  EXPECT_EQ(report.last_checkpoint, (dir / "ckpt-epoch-3.bin").string());
  const robust::HealthEvent* cascade = nullptr;
  for (const robust::HealthEvent& ev : report.events) {
    if (ev.type == robust::EventType::kCheckpointCascade) cascade = &ev;
  }
  ASSERT_NE(cascade, nullptr);
  EXPECT_GE(cascade->value, 1.0);  // at least the torn latest was skipped
  // The retry re-trains epoch 4 and re-saves its generation with the
  // fault spent, so by the end of the run the whole chain scrubs valid.
  ASSERT_NE(trainer.checkpoint_scrubber(), nullptr);
  const robust::GenerationInfo* regen = trainer.checkpoint_scrubber()->verdict(
      (dir / "ckpt-epoch-4.bin").string());
  ASSERT_NE(regen, nullptr);
  EXPECT_TRUE(regen->valid);
  EXPECT_TRUE(std::isfinite(result.epochs.back().train_loss));
  fs::remove_all(dir);
}

TEST(Integrity, NoQuorumSplitEscalatesToTheGuardian) {
  // Two replicas, one corrupted: a 1-1 digest split cannot say which side
  // is healthy, so the monitor must *not* heal; the fatal kSdcNoQuorum
  // event reaches the recovery policy, which rolls back to the last good
  // checkpoint. The single-shot fault is spent, so the retry completes.
  auto data = data::SyntheticImageDataset(pruning_data());
  const fs::path dir = scratch_dir("noquorum");
  graph::Network net = small_net();
  core::TrainConfig cfg = integrity_cfg(dir.string());
  cfg.replicas = 2;
  cfg.fault_spec = "sdc-param:replica=1,step=3";
  core::PruneTrainer trainer(net, data, cfg);
  const auto result = trainer.run();

  const auto& report = trainer.recovery_report();
  EXPECT_EQ(report.faults_injected, 1);
  EXPECT_EQ(report.rollbacks, 1);  // escalated, not healed
  ASSERT_NE(trainer.integrity_monitor(), nullptr);
  EXPECT_EQ(trainer.integrity_monitor()->heals(), 0);
  const robust::HealthEvent* fatal =
      robust::HealthMonitor::first_fatal(report.events);
  ASSERT_NE(fatal, nullptr);
  EXPECT_EQ(fatal->type, robust::EventType::kSdcNoQuorum);
  EXPECT_TRUE(std::isfinite(result.epochs.back().train_loss));
  fs::remove_all(dir);
}

}  // namespace
}  // namespace pt
