// Model builder tests: architectural invariants (conv counts, stage
// structure, shapes end-to-end), NetworkInfo annotations, width scaling,
// and trainability smoke checks.
#include <gtest/gtest.h>

#include "models/builders.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/loss.h"

namespace pt::models {
namespace {

ModelConfig tiny_cfg() {
  ModelConfig cfg;
  cfg.image_h = 8;
  cfg.image_w = 8;
  cfg.classes = 5;
  cfg.width_mult = 0.25f;
  return cfg;
}

TEST(Scaled, RoundsAndClamps) {
  EXPECT_EQ(scaled(64, 1.0f), 64);
  EXPECT_EQ(scaled(64, 0.5f), 32);
  EXPECT_EQ(scaled(64, 0.26f), 17);
  EXPECT_EQ(scaled(16, 0.01f), 2);  // clamped
}

struct DepthCase {
  int depth;
  std::int64_t expected_convs;  // depth-1 path convs + projection shortcuts + stem
};

class ResNetBasicTest : public ::testing::TestWithParam<int> {};

TEST_P(ResNetBasicTest, ConvAndBlockCounts) {
  const int depth = GetParam();
  auto net = build_resnet_basic(depth, tiny_cfg());
  const int n = (depth - 2) / 6;
  // Blocks: 3 stages x n; path convs: 2 per block; stem: 1; projection
  // shortcuts: 2 (at the two stage transitions).
  EXPECT_EQ(static_cast<int>(net.info.blocks.size()), 3 * n);
  EXPECT_EQ(count_conv_layers(net), 1 + 2 * 3 * n + 2);
  EXPECT_GE(net.info.first_conv, 0);
  EXPECT_GE(net.info.classifier, 0);
}

INSTANTIATE_TEST_SUITE_P(Depths, ResNetBasicTest, ::testing::Values(8, 20, 32, 56));

TEST(ResNetBasic, RejectsBadDepth) {
  EXPECT_THROW(build_resnet_basic(21, tiny_cfg()), std::invalid_argument);
  EXPECT_THROW(build_resnet_basic(6, tiny_cfg()), std::invalid_argument);
}

TEST(ResNetBasic, ForwardShape) {
  auto cfg = tiny_cfg();
  auto net = build_resnet_basic(20, cfg);
  Rng rng(1);
  Tensor x = Tensor::randn({2, 3, cfg.image_h, cfg.image_w}, rng);
  Tensor y = net.forward(x, false);
  EXPECT_EQ(y.shape(), (Shape{2, cfg.classes}));
}

TEST(ResNetBasic, BlockInfoConsistent) {
  auto net = build_resnet_basic(20, tiny_cfg());
  for (const auto& blk : net.info.blocks) {
    EXPECT_EQ(blk.path_convs.size(), 2u);
    EXPECT_EQ(blk.path_nodes.size(), 5u);
    EXPECT_GE(blk.add_node, 0);
    // Projection shortcut implies recorded conv node.
    if (!blk.shortcut_nodes.empty()) {
      EXPECT_EQ(blk.shortcut_nodes.size(), 2u);
      EXPECT_EQ(blk.shortcut_conv, blk.shortcut_nodes[0]);
    }
    // The add node consumes the last path node's output.
    EXPECT_EQ(net.node(blk.add_node).inputs[0], blk.path_nodes.back());
  }
}

TEST(ResNet50, StructureAndShape) {
  auto cfg = tiny_cfg();
  cfg.width_mult = 0.1f;
  auto net = build_resnet50(cfg, false);
  // 16 bottleneck blocks: {3,4,6,3}.
  EXPECT_EQ(net.info.blocks.size(), 16u);
  // Convs: stem 1 + 3 per block x16 + 4 projection shortcuts = 53.
  EXPECT_EQ(count_conv_layers(net), 1 + 48 + 4);
  Rng rng(2);
  Tensor x = Tensor::randn({1, 3, 8, 8}, rng);
  EXPECT_EQ(net.forward(x, false).shape(), (Shape{1, cfg.classes}));
}

TEST(ResNet50, BottleneckBlockInfo) {
  auto cfg = tiny_cfg();
  cfg.width_mult = 0.1f;
  auto net = build_resnet50(cfg, false);
  for (const auto& blk : net.info.blocks) {
    EXPECT_EQ(blk.path_convs.size(), 3u);
    EXPECT_EQ(blk.path_nodes.size(), 8u);
  }
  // First block of every stage has a projection (channel expansion).
  int projections = 0;
  for (const auto& blk : net.info.blocks) {
    if (blk.shortcut_conv >= 0) ++projections;
  }
  EXPECT_EQ(projections, 4);
}

TEST(ResNet50, ImageNetStemDownsamples) {
  ModelConfig cfg;
  cfg.image_h = 32;
  cfg.image_w = 32;
  cfg.classes = 10;
  cfg.width_mult = 0.1f;
  auto net = build_resnet50(cfg, /*imagenet_stem=*/true);
  Rng rng(3);
  Tensor x = Tensor::randn({1, 3, 32, 32}, rng);
  EXPECT_EQ(net.forward(x, false).shape(), (Shape{1, 10}));
}

TEST(Vgg, ConvCounts) {
  auto cfg = tiny_cfg();
  auto v11 = build_vgg(11, cfg);
  auto v13 = build_vgg(13, cfg);
  EXPECT_EQ(count_conv_layers(v11), 8);
  EXPECT_EQ(count_conv_layers(v13), 10);
  EXPECT_TRUE(v11.info.blocks.empty());  // no residual structure
  EXPECT_THROW(build_vgg(16, cfg), std::invalid_argument);
}

TEST(Vgg, ForwardShapeSmallInput) {
  auto cfg = tiny_cfg();  // 8x8 input: only 3 pools possible
  auto net = build_vgg(11, cfg);
  Rng rng(4);
  Tensor x = Tensor::randn({2, 3, 8, 8}, rng);
  EXPECT_EQ(net.forward(x, false).shape(), (Shape{2, cfg.classes}));
}

TEST(BuildByName, DispatchesAll) {
  auto cfg = tiny_cfg();
  cfg.width_mult = 0.1f;
  for (const char* name :
       {"resnet20", "resnet32", "resnet50", "resnet56", "vgg11", "vgg13"}) {
    auto net = build_by_name(name, cfg);
    EXPECT_GT(net.num_params(), 0) << name;
  }
  EXPECT_THROW(build_by_name("alexnet", cfg), std::invalid_argument);
}

TEST(Builders, DeterministicInitPerSeed) {
  auto cfg = tiny_cfg();
  auto a = build_resnet_basic(20, cfg);
  auto b = build_resnet_basic(20, cfg);
  auto pa = a.params();
  auto pb = b.params();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    for (std::int64_t q = 0; q < pa[i]->value.numel(); ++q) {
      ASSERT_EQ(pa[i]->value.data()[q], pb[i]->value.data()[q]);
    }
  }
}

TEST(Builders, WidthMultScalesParams) {
  auto cfg = tiny_cfg();
  cfg.width_mult = 0.25f;
  auto small = build_resnet_basic(20, cfg);
  cfg.width_mult = 0.5f;
  auto large = build_resnet_basic(20, cfg);
  EXPECT_GT(large.num_params(), 2 * small.num_params());
}

TEST(Builders, OneTrainingStepReducesLoss) {
  // Integration smoke: a few SGD steps on one batch should reduce loss.
  auto cfg = tiny_cfg();
  auto net = build_resnet_basic(8, cfg);
  Rng rng(5);
  Tensor x = Tensor::randn({8, 3, 8, 8}, rng);
  std::vector<std::int64_t> labels;
  for (int i = 0; i < 8; ++i) labels.push_back(i % cfg.classes);
  nn::SoftmaxCrossEntropy loss_fn;
  double first_loss = 0, last_loss = 0;
  for (int step = 0; step < 12; ++step) {
    Tensor out = net.forward(x, true);
    const double l = loss_fn.forward(out, labels);
    if (step == 0) first_loss = l;
    last_loss = l;
    net.zero_grad();
    net.backward(loss_fn.backward());
    for (nn::Param* p : net.params()) {
      for (std::int64_t q = 0; q < p->value.numel(); ++q) {
        p->value.data()[q] -= 0.1f * p->grad.data()[q];
      }
    }
  }
  EXPECT_LT(last_loss, first_loss);
}

}  // namespace
}  // namespace pt::models
