// Layer tests: numerical gradient checks (central finite differences)
// against every layer's backward, plus behavioural unit tests and the
// channel-surgery (shrink) invariants the pruning machinery relies on.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/channel_index.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/pool.h"
#include "tensor/ops.h"

namespace pt::nn {
namespace {

/// Scalar probe loss: L = <w, layer(x)> with fixed random w, so dL/d(out)=w.
struct Probe {
  Tensor w;
  double loss(const Tensor& out) const {
    double acc = 0;
    for (std::int64_t i = 0; i < out.numel(); ++i) {
      acc += double(w.data()[i]) * out.data()[i];
    }
    return acc;
  }
};

/// Central-difference check of dL/dx returned by backward().
void check_input_grad(Layer& layer, Tensor& x, double tol = 2e-2) {
  Rng rng(99);
  Tensor out = layer.forward(x, true);
  Probe probe{Tensor::randn(out.shape(), rng)};
  layer.zero_grad();
  Tensor dx = layer.backward(probe.w);
  ASSERT_EQ(dx.shape(), x.shape());

  const float eps = 1e-2f;
  // Finite differences must evaluate the same function backward
  // differentiates — the *training-mode* forward (this matters for batch
  // norm, whose inference path uses running statistics instead).
  // Check a deterministic subset of coordinates to keep runtime bounded.
  const std::int64_t stride = std::max<std::int64_t>(1, x.numel() / 64);
  for (std::int64_t i = 0; i < x.numel(); i += stride) {
    const float orig = x.data()[i];
    x.data()[i] = orig + eps;
    const double lp = probe.loss(layer.forward(x, true));
    x.data()[i] = orig - eps;
    const double lm = probe.loss(layer.forward(x, true));
    x.data()[i] = orig;
    const double fd = (lp - lm) / (2.0 * eps);
    EXPECT_NEAR(dx.data()[i], fd, tol * std::max(1.0, std::fabs(fd)))
        << "input grad mismatch at flat index " << i;
  }
}

/// Central-difference check of every parameter gradient.
void check_param_grads(Layer& layer, Tensor& x, double tol = 2e-2) {
  Rng rng(7);
  Tensor out = layer.forward(x, true);
  Probe probe{Tensor::randn(out.shape(), rng)};
  layer.zero_grad();
  (void)layer.backward(probe.w);
  const float eps = 1e-2f;
  for (Param* p : layer.params()) {
    const std::int64_t stride = std::max<std::int64_t>(1, p->value.numel() / 48);
    for (std::int64_t i = 0; i < p->value.numel(); i += stride) {
      const float orig = p->value.data()[i];
      p->value.data()[i] = orig + eps;
      const double lp = probe.loss(layer.forward(x, true));
      p->value.data()[i] = orig - eps;
      const double lm = probe.loss(layer.forward(x, true));
      p->value.data()[i] = orig;
      const double fd = (lp - lm) / (2.0 * eps);
      EXPECT_NEAR(p->grad.data()[i], fd, tol * std::max(1.0, std::fabs(fd)))
          << p->name << " grad mismatch at " << i;
    }
  }
}

// --- Conv2d ----------------------------------------------------------------

struct ConvCase {
  std::int64_t n, c, h, w, k, kernel, stride, pad;
};

class ConvGradTest : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvGradTest, InputGradMatchesFiniteDifference) {
  const auto p = GetParam();
  Rng rng(1);
  Conv2d conv(p.c, p.k, p.kernel, p.stride, p.pad, rng);
  Tensor x = Tensor::randn({p.n, p.c, p.h, p.w}, rng);
  check_input_grad(conv, x);
}

TEST_P(ConvGradTest, WeightGradMatchesFiniteDifference) {
  const auto p = GetParam();
  Rng rng(2);
  Conv2d conv(p.c, p.k, p.kernel, p.stride, p.pad, rng);
  Tensor x = Tensor::randn({p.n, p.c, p.h, p.w}, rng);
  check_param_grads(conv, x);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ConvGradTest,
    ::testing::Values(ConvCase{2, 3, 6, 6, 4, 3, 1, 1}, ConvCase{1, 2, 8, 8, 3, 3, 2, 1},
                      ConvCase{2, 4, 5, 5, 2, 1, 1, 0}, ConvCase{1, 1, 7, 7, 2, 5, 1, 2},
                      ConvCase{3, 2, 4, 4, 2, 3, 1, 1}));

TEST(Conv2d, OutputShape) {
  Rng rng(3);
  Conv2d conv(3, 8, 3, 2, 1, rng);
  EXPECT_EQ(conv.output_shape({4, 3, 16, 16}), (Shape{4, 8, 8, 8}));
}

TEST(Conv2d, BiasAddsPerChannel) {
  Rng rng(4);
  Conv2d conv(1, 2, 1, 1, 0, rng, /*bias=*/true);
  conv.weight().value.fill(0.f);
  conv.bias().value.at(0) = 1.5f;
  conv.bias().value.at(1) = -2.f;
  Tensor x = Tensor::randn({1, 1, 3, 3}, rng);
  Tensor y = conv.forward(x, false);
  EXPECT_FLOAT_EQ(y.at(0, 0, 1, 1), 1.5f);
  EXPECT_FLOAT_EQ(y.at(0, 1, 2, 2), -2.f);
}

TEST(Conv2d, BiasGradCheck) {
  Rng rng(5);
  Conv2d conv(2, 3, 3, 1, 1, rng, /*bias=*/true);
  Tensor x = Tensor::randn({2, 2, 4, 4}, rng);
  check_param_grads(conv, x);
}

TEST(Conv2d, RejectsWrongChannelCount) {
  Rng rng(6);
  Conv2d conv(3, 4, 3, 1, 1, rng);
  Tensor x({1, 2, 8, 8});
  EXPECT_THROW(conv.forward(x, false), std::invalid_argument);
}

TEST(Conv2d, BackwardWithoutForwardThrows) {
  Rng rng(7);
  Conv2d conv(1, 1, 1, 1, 0, rng);
  EXPECT_THROW(conv.backward(Tensor({1, 1, 1, 1})), std::logic_error);
}

TEST(Conv2d, ChannelMaxAbsGroups) {
  Rng rng(8);
  Conv2d conv(2, 2, 1, 1, 0, rng);
  // weight[k][c][0][0]
  conv.weight().value = Tensor::from_values({2, 2, 1, 1}, {0.1f, -0.9f, 0.2f, 0.3f});
  conv.weight().init_state();
  EXPECT_FLOAT_EQ(conv.in_channel_max_abs(0), 0.2f);   // |0.1|, |0.2|
  EXPECT_FLOAT_EQ(conv.in_channel_max_abs(1), 0.9f);   // |-0.9|, |0.3|
  EXPECT_FLOAT_EQ(conv.out_channel_max_abs(0), 0.9f);  // |0.1|, |-0.9|
  EXPECT_FLOAT_EQ(conv.out_channel_max_abs(1), 0.3f);
}

TEST(Conv2d, ZeroSmallWeights) {
  Rng rng(9);
  Conv2d conv(1, 1, 2, 1, 0, rng);
  conv.weight().value = Tensor::from_values({1, 1, 2, 2}, {1e-5f, -1e-5f, 0.5f, 1e-3f});
  conv.zero_small_weights(1e-4f);
  EXPECT_EQ(conv.weight().value.at(0, 0, 0, 0), 0.f);
  EXPECT_EQ(conv.weight().value.at(0, 0, 0, 1), 0.f);
  EXPECT_EQ(conv.weight().value.at(0, 0, 1, 0), 0.5f);
  EXPECT_EQ(conv.weight().value.at(0, 0, 1, 1), 1e-3f);
}

TEST(Conv2d, ShrinkSlicesWeightGradMomentumConsistently) {
  Rng rng(10);
  Conv2d conv(3, 4, 3, 1, 1, rng);
  // Tag grad/momentum so we can verify slices came from the right place.
  for (std::int64_t i = 0; i < conv.weight().grad.numel(); ++i) {
    conv.weight().grad.data()[i] = float(i);
    conv.weight().momentum.data()[i] = float(-i);
  }
  const float w_before = conv.weight().value.at(2, 1, 0, 0);
  conv.shrink({1, 2}, {0, 2});
  EXPECT_EQ(conv.in_channels(), 2);
  EXPECT_EQ(conv.out_channels(), 2);
  EXPECT_EQ(conv.weight().value.shape(), (Shape{2, 2, 3, 3}));
  // New [1][0] was old [2][1].
  EXPECT_FLOAT_EQ(conv.weight().value.at(1, 0, 0, 0), w_before);
  const float expected_grad = float(((2 * 3 + 1) * 3 + 0) * 3 + 0);
  EXPECT_FLOAT_EQ(conv.weight().grad.at(1, 0, 0, 0), expected_grad);
  EXPECT_FLOAT_EQ(conv.weight().momentum.at(1, 0, 0, 0), -expected_grad);
}

TEST(Conv2d, ShrinkPreservesFunctionOnKeptChannels) {
  // If removed in/out channels have zero weights, the shrunk conv computes
  // exactly the same values on the kept channels.
  Rng rng(11);
  Conv2d conv(3, 3, 3, 1, 1, rng);
  // Zero everything touching input channel 1 and output channel 2.
  for (std::int64_t k = 0; k < 3; ++k)
    for (std::int64_t q = 0; q < 9; ++q)
      conv.weight().value.data()[(k * 3 + 1) * 9 + q] = 0.f;
  for (std::int64_t c = 0; c < 3; ++c)
    for (std::int64_t q = 0; q < 9; ++q)
      conv.weight().value.data()[(2 * 3 + c) * 9 + q] = 0.f;
  Tensor x = Tensor::randn({2, 3, 5, 5}, rng);
  Tensor y_full = conv.forward(x, false);

  conv.shrink({0, 2}, {0, 1});
  // Gather kept input channels 0, 2.
  Tensor xs({2, 2, 5, 5});
  for (std::int64_t n = 0; n < 2; ++n)
    for (std::int64_t q = 0; q < 25; ++q) {
      xs.data()[(n * 2 + 0) * 25 + q] = x.data()[(n * 3 + 0) * 25 + q];
      xs.data()[(n * 2 + 1) * 25 + q] = x.data()[(n * 3 + 2) * 25 + q];
    }
  Tensor y_small = conv.forward(xs, false);
  for (std::int64_t n = 0; n < 2; ++n)
    for (std::int64_t k = 0; k < 2; ++k)
      for (std::int64_t q = 0; q < 25; ++q) {
        EXPECT_NEAR(y_small.data()[(n * 2 + k) * 25 + q],
                    y_full.data()[(n * 3 + k) * 25 + q], 1e-5f);
      }
}

TEST(Conv2d, ShrinkEmptyKeepSetThrows) {
  Rng rng(12);
  Conv2d conv(2, 2, 1, 1, 0, rng);
  EXPECT_THROW(conv.shrink({}, {0}), std::invalid_argument);
  EXPECT_THROW(conv.shrink({0}, {}), std::invalid_argument);
}

// --- BatchNorm2d -------------------------------------------------------------

TEST(BatchNorm2d, NormalizesToZeroMeanUnitVar) {
  Rng rng(20);
  BatchNorm2d bn(3);
  Tensor x = Tensor::randn({4, 3, 5, 5}, rng, 2.f, 3.f);
  Tensor y = bn.forward(x, true);
  for (std::int64_t c = 0; c < 3; ++c) {
    double mean = 0, var = 0;
    for (std::int64_t n = 0; n < 4; ++n)
      for (std::int64_t q = 0; q < 25; ++q) mean += y.data()[(n * 3 + c) * 25 + q];
    mean /= 100.0;
    for (std::int64_t n = 0; n < 4; ++n)
      for (std::int64_t q = 0; q < 25; ++q) {
        const double d = y.data()[(n * 3 + c) * 25 + q] - mean;
        var += d * d;
      }
    var /= 100.0;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(BatchNorm2d, RunningStatsConvergeToBatchStats) {
  Rng rng(21);
  BatchNorm2d bn(2, /*momentum=*/0.5f);
  Tensor x = Tensor::randn({8, 2, 4, 4}, rng, -1.f, 2.f);
  // Repeated forwards on one fixed batch: the EMA must converge to that
  // batch's actual statistics (not the population parameters).
  double mean = 0, var = 0;
  for (std::int64_t n = 0; n < 8; ++n)
    for (std::int64_t q = 0; q < 16; ++q) mean += x.data()[(n * 2 + 0) * 16 + q];
  mean /= 128.0;
  for (std::int64_t n = 0; n < 8; ++n)
    for (std::int64_t q = 0; q < 16; ++q) {
      const double d = x.data()[(n * 2 + 0) * 16 + q] - mean;
      var += d * d;
    }
  var /= 128.0;
  for (int i = 0; i < 20; ++i) bn.forward(x, true);
  EXPECT_NEAR(bn.running_mean().at(0), mean, 1e-3);
  EXPECT_NEAR(bn.running_var().at(0), var, 1e-2);
}

TEST(BatchNorm2d, EvalUsesRunningStats) {
  Rng rng(22);
  BatchNorm2d bn(1);
  bn.running_mean().at(0) = 5.f;
  bn.running_var().at(0) = 4.f;
  Tensor x = Tensor::full({1, 1, 2, 2}, 7.f);
  Tensor y = bn.forward(x, false);
  // (7 - 5) / sqrt(4) = 1.
  EXPECT_NEAR(y.at(0, 0, 0, 0), 1.f, 1e-3f);
}

TEST(BatchNorm2d, InputGradCheck) {
  Rng rng(23);
  BatchNorm2d bn(3);
  Tensor x = Tensor::randn({3, 3, 4, 4}, rng);
  check_input_grad(bn, x, 3e-2);
}

TEST(BatchNorm2d, ParamGradCheck) {
  Rng rng(24);
  BatchNorm2d bn(2);
  Tensor x = Tensor::randn({4, 2, 3, 3}, rng);
  check_param_grads(bn, x, 3e-2);
}

TEST(BatchNorm2d, ShrinkSlicesAllState) {
  BatchNorm2d bn(4);
  for (std::int64_t c = 0; c < 4; ++c) {
    bn.gamma().value.at(c) = float(c);
    bn.running_mean().at(c) = 10.f + float(c);
  }
  bn.shrink({1, 3});
  EXPECT_EQ(bn.channels(), 2);
  EXPECT_FLOAT_EQ(bn.gamma().value.at(0), 1.f);
  EXPECT_FLOAT_EQ(bn.gamma().value.at(1), 3.f);
  EXPECT_FLOAT_EQ(bn.running_mean().at(1), 13.f);
  EXPECT_THROW(bn.shrink({}), std::invalid_argument);
}

// --- ReLU / pooling ----------------------------------------------------------

TEST(ReLU, GradCheck) {
  Rng rng(30);
  ReLU relu_layer;
  Tensor x = Tensor::randn({2, 3, 4, 4}, rng);
  // Nudge values away from 0 where ReLU is non-differentiable.
  for (float& v : x.span()) {
    if (std::fabs(v) < 0.05f) v = 0.1f;
  }
  check_input_grad(relu_layer, x);
}

TEST(MaxPool2d, ForwardPicksMaxAndRoutesGrad) {
  MaxPool2d pool(2);
  Tensor x = Tensor::from_values({1, 1, 2, 2}, {1, 4, 3, 2});
  Tensor y = pool.forward(x, true);
  EXPECT_EQ(y.shape(), (Shape{1, 1, 1, 1}));
  EXPECT_EQ(y.at(0, 0, 0, 0), 4.f);
  Tensor dy = Tensor::full({1, 1, 1, 1}, 2.f);
  Tensor dx = pool.backward(dy);
  EXPECT_EQ(dx.at(0, 0, 0, 1), 2.f);  // grad at argmax
  EXPECT_EQ(dx.at(0, 0, 0, 0), 0.f);
}

TEST(MaxPool2d, GradCheck) {
  Rng rng(31);
  MaxPool2d pool(2);
  Tensor x = Tensor::randn({2, 2, 6, 6}, rng);
  check_input_grad(pool, x);
}

TEST(MaxPool2d, RejectsIndivisibleInput) {
  MaxPool2d pool(2);
  Tensor x({1, 1, 3, 4});
  EXPECT_THROW(pool.forward(x, false), std::invalid_argument);
}

TEST(GlobalAvgPool, ForwardAveragesChannel) {
  GlobalAvgPool gap;
  Tensor x = Tensor::from_values({1, 2, 1, 2}, {1, 3, 10, 20});
  Tensor y = gap.forward(x, false);
  EXPECT_EQ(y.shape(), (Shape{1, 2}));
  EXPECT_FLOAT_EQ(y.at(0, 0), 2.f);
  EXPECT_FLOAT_EQ(y.at(0, 1), 15.f);
}

TEST(GlobalAvgPool, GradCheck) {
  Rng rng(32);
  GlobalAvgPool gap;
  Tensor x = Tensor::randn({2, 3, 4, 4}, rng);
  check_input_grad(gap, x);
}

// --- Linear -------------------------------------------------------------------

TEST(Linear, GradChecks) {
  Rng rng(40);
  Linear fc(6, 4, rng);
  Tensor x = Tensor::randn({3, 6}, rng);
  check_input_grad(fc, x);
  Linear fc2(5, 3, rng);
  Tensor x2 = Tensor::randn({2, 5}, rng);
  check_param_grads(fc2, x2);
}

TEST(Linear, KnownValue) {
  Rng rng(41);
  Linear fc(2, 1, rng);
  fc.weight().value = Tensor::from_values({1, 2}, {2.f, -1.f});
  fc.bias().value.at(0) = 0.5f;
  Tensor x = Tensor::from_values({1, 2}, {3.f, 4.f});
  Tensor y = fc.forward(x, false);
  EXPECT_FLOAT_EQ(y.at(0, 0), 2 * 3 - 4 + 0.5f);
}

TEST(Linear, InFeatureMaxAbsAndShrink) {
  Rng rng(42);
  Linear fc(3, 2, rng);
  fc.weight().value = Tensor::from_values({2, 3}, {0.1f, 2.f, -3.f, 0.2f, -1.f, 0.5f});
  EXPECT_FLOAT_EQ(fc.in_feature_max_abs(0), 0.2f);
  EXPECT_FLOAT_EQ(fc.in_feature_max_abs(2), 3.f);
  fc.shrink_inputs({0, 2});
  EXPECT_EQ(fc.in_features(), 2);
  EXPECT_FLOAT_EQ(fc.weight().value.at(0, 1), -3.f);
  EXPECT_FLOAT_EQ(fc.weight().value.at(1, 0), 0.2f);
}

// --- SoftmaxCrossEntropy --------------------------------------------------------

TEST(SoftmaxCrossEntropy, UniformLogitsGiveLogK) {
  SoftmaxCrossEntropy loss;
  Tensor logits({4, 10});
  const double l = loss.forward(logits, {0, 1, 2, 3});
  EXPECT_NEAR(l, std::log(10.0), 1e-6);
}

TEST(SoftmaxCrossEntropy, PerfectPredictionLowLoss) {
  SoftmaxCrossEntropy loss;
  Tensor logits({1, 3});
  logits.at(0, 1) = 50.f;
  EXPECT_LT(loss.forward(logits, {1}), 1e-6);
  EXPECT_EQ(loss.correct(), 1);
}

TEST(SoftmaxCrossEntropy, GradMatchesFiniteDifference) {
  Rng rng(50);
  SoftmaxCrossEntropy loss;
  Tensor logits = Tensor::randn({3, 5}, rng);
  std::vector<std::int64_t> labels = {1, 4, 0};
  loss.forward(logits, labels);
  Tensor g = loss.backward();
  const float eps = 1e-3f;
  for (std::int64_t i = 0; i < logits.numel(); ++i) {
    const float orig = logits.data()[i];
    logits.data()[i] = orig + eps;
    const double lp = loss.forward(logits, labels);
    logits.data()[i] = orig - eps;
    const double lm = loss.forward(logits, labels);
    logits.data()[i] = orig;
    EXPECT_NEAR(g.data()[i], (lp - lm) / (2 * eps), 1e-3);
  }
}

TEST(SoftmaxCrossEntropy, CountsCorrect) {
  SoftmaxCrossEntropy loss;
  Tensor logits({2, 2});
  logits.at(0, 0) = 1.f;  // predicts 0
  logits.at(1, 1) = 1.f;  // predicts 1
  loss.forward(logits, {0, 0});
  EXPECT_EQ(loss.correct(), 1);
}

TEST(SoftmaxCrossEntropy, RejectsBadLabel) {
  SoftmaxCrossEntropy loss;
  Tensor logits({1, 2});
  EXPECT_THROW(loss.forward(logits, {5}), std::invalid_argument);
}

// --- ChannelSelect / ChannelScatter ----------------------------------------------

TEST(ChannelIndex, SelectGathersChannels) {
  ChannelSelect sel({2, 0}, 3);
  Tensor x({1, 3, 1, 2});
  for (std::int64_t i = 0; i < 6; ++i) x.data()[i] = float(i);
  Tensor y = sel.forward(x, false);
  EXPECT_EQ(y.shape(), (Shape{1, 2, 1, 2}));
  EXPECT_EQ(y.at(0, 0, 0, 0), 4.f);  // channel 2
  EXPECT_EQ(y.at(0, 1, 0, 1), 1.f);  // channel 0
}

TEST(ChannelIndex, ScatterPlacesChannelsZeroElsewhere) {
  ChannelScatter sca({1}, 3);
  Tensor x = Tensor::full({1, 1, 2, 2}, 5.f);
  Tensor y = sca.forward(x, false);
  EXPECT_EQ(y.shape(), (Shape{1, 3, 2, 2}));
  EXPECT_EQ(y.at(0, 0, 0, 0), 0.f);
  EXPECT_EQ(y.at(0, 1, 0, 0), 5.f);
  EXPECT_EQ(y.at(0, 2, 1, 1), 0.f);
}

TEST(ChannelIndex, SelectScatterAreAdjoint) {
  Rng rng(60);
  std::vector<std::int64_t> idx = {0, 3, 4};
  ChannelSelect sel(idx, 6);
  ChannelScatter sca(idx, 6);
  Tensor x = Tensor::randn({2, 6, 3, 3}, rng);
  Tensor y = Tensor::randn({2, 3, 3, 3}, rng);
  // <select(x), y> == <x, scatter(y)>
  Tensor sx = sel.forward(x, false);
  Tensor sy = sca.forward(y, false);
  double lhs = 0, rhs = 0;
  for (std::int64_t i = 0; i < sx.numel(); ++i) lhs += double(sx.data()[i]) * y.data()[i];
  for (std::int64_t i = 0; i < x.numel(); ++i) rhs += double(x.data()[i]) * sy.data()[i];
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(ChannelIndex, GradChecks) {
  Rng rng(61);
  ChannelSelect sel({1, 2}, 4);
  Tensor x = Tensor::randn({2, 4, 3, 3}, rng);
  check_input_grad(sel, x);
  ChannelScatter sca({0, 3}, 5);
  Tensor x2 = Tensor::randn({2, 2, 3, 3}, rng);
  check_input_grad(sca, x2);
}

TEST(ChannelIndex, RejectsOutOfRange) {
  EXPECT_THROW(ChannelSelect({5}, 3), std::invalid_argument);
  EXPECT_THROW(ChannelScatter({3}, 3), std::invalid_argument);
}

}  // namespace
}  // namespace pt::nn
