// Optimizer and LR-schedule tests: exact SGD momentum arithmetic, weight
// decay, the linear LR scaling hook used by dynamic mini-batch adjustment,
// and multi-step decay.
#include <gtest/gtest.h>

#include "nn/layer.h"
#include "optim/lr_schedule.h"
#include "optim/sgd.h"

namespace pt::optim {
namespace {

nn::Param make_param(std::vector<float> w, std::vector<float> g) {
  nn::Param p;
  const auto n = static_cast<std::int64_t>(w.size());
  p.value = Tensor::from_values({n}, std::move(w));
  p.init_state();
  for (std::size_t i = 0; i < g.size(); ++i) {
    p.grad.at(static_cast<std::int64_t>(i)) = g[i];
  }
  return p;
}

TEST(SGD, VanillaStep) {
  nn::Param p = make_param({1.f}, {0.5f});
  SGD opt(/*lr=*/0.1f, /*momentum=*/0.f);
  opt.step({&p});
  EXPECT_NEAR(p.value.at(0), 1.f - 0.1f * 0.5f, 1e-6f);
}

TEST(SGD, MomentumAccumulates) {
  nn::Param p = make_param({0.f}, {1.f});
  SGD opt(0.1f, 0.9f);
  opt.step({&p});
  EXPECT_NEAR(p.momentum.at(0), 1.f, 1e-6f);
  EXPECT_NEAR(p.value.at(0), -0.1f, 1e-6f);
  // Second step with the same gradient: v = 0.9*1 + 1 = 1.9.
  opt.step({&p});
  EXPECT_NEAR(p.momentum.at(0), 1.9f, 1e-6f);
  EXPECT_NEAR(p.value.at(0), -0.1f - 0.19f, 1e-6f);
}

TEST(SGD, WeightDecayAddsToGradient) {
  nn::Param p = make_param({2.f}, {0.f});
  SGD opt(0.1f, 0.f, /*weight_decay=*/0.01f);
  opt.step({&p});
  // g_eff = 0 + 0.01 * 2 = 0.02; w = 2 - 0.1*0.02.
  EXPECT_NEAR(p.value.at(0), 2.f - 0.002f, 1e-7f);
}

TEST(SGD, ScaleLrForDynamicBatch) {
  SGD opt(0.1f);
  opt.scale_lr(1.5f);  // batch 128 -> 192
  EXPECT_FLOAT_EQ(opt.lr(), 0.15f);
  opt.set_lr(0.05f);
  EXPECT_FLOAT_EQ(opt.lr(), 0.05f);
}

TEST(SGD, MultipleParams) {
  nn::Param a = make_param({1.f, 2.f}, {1.f, 1.f});
  nn::Param b = make_param({-1.f}, {2.f});
  SGD opt(0.5f, 0.f);
  opt.step(std::vector<nn::Param*>{&a, &b});
  EXPECT_NEAR(a.value.at(0), 0.5f, 1e-6f);
  EXPECT_NEAR(a.value.at(1), 1.5f, 1e-6f);
  EXPECT_NEAR(b.value.at(0), -2.f, 1e-6f);
}

TEST(MultiStepLR, DecaysAtMilestones) {
  MultiStepLR sched({10, 20}, 0.1);
  EXPECT_DOUBLE_EQ(sched.multiplier_at(0), 1.0);
  EXPECT_DOUBLE_EQ(sched.multiplier_at(9), 1.0);
  EXPECT_DOUBLE_EQ(sched.multiplier_at(10), 0.1);
  EXPECT_DOUBLE_EQ(sched.multiplier_at(19), 0.1);
  EXPECT_NEAR(sched.multiplier_at(20), 0.01, 1e-12);
  EXPECT_NEAR(sched.multiplier_at(100), 0.01, 1e-12);
}

TEST(MultiStepLR, EmptyMilestonesIsConstant) {
  MultiStepLR sched({});
  EXPECT_DOUBLE_EQ(sched.multiplier_at(1000), 1.0);
}

TEST(MultiStepLR, CustomGamma) {
  MultiStepLR sched({5}, 0.5);
  EXPECT_DOUBLE_EQ(sched.multiplier_at(5), 0.5);
}

}  // namespace
}  // namespace pt::optim
