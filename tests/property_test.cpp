// Repository-wide property tests (parameterized sweeps):
//  - function preservation: randomly sparsified models compute identical
//    outputs before and after union reconfiguration, across architectures
//    and random seeds;
//  - idempotence: reconfiguring twice changes nothing the second time;
//  - cost-model consistency: the analytic union FLOPs (fig6 math) equal
//    the FlopsModel of the physically reconfigured network.
#include <gtest/gtest.h>

#include <cmath>

#include "cost/flops.h"
#include "models/builders.h"
#include "nn/batchnorm.h"
#include "nn/conv2d.h"
#include "prune/channel_analysis.h"
#include "prune/reconfigure.h"

namespace pt {
namespace {

models::ModelConfig tiny_cfg() {
  models::ModelConfig cfg;
  cfg.image_h = 8;
  cfg.image_w = 8;
  cfg.classes = 5;
  cfg.width_mult = 0.5f;
  return cfg;
}

/// Randomly kills ~frac of each channel *variable*'s channels consistently:
/// the channel's weights are zeroed in every writer conv's out-group and
/// every reader conv's in-group, and every BN carrying the variable is
/// neutralized on that channel — so (a) the kill itself does not change the
/// network function, and (b) reconfiguration is guaranteed to prune the
/// killed channels exactly. Returns how many channels were killed.
std::int64_t kill_random_var_channels(graph::Network& net, double frac,
                                      std::uint64_t seed) {
  Rng rng(seed);
  // Threshold 0: we only need the variable *structure* here.
  const auto analysis = prune::analyze_channels(net, 0.f);
  std::int64_t killed = 0;
  for (std::size_t v = 0; v < analysis.vars.size(); ++v) {
    const auto& var = analysis.vars[v];
    if (var.dense_required || var.channels < 2) continue;
    if (var.writer_convs.empty()) continue;
    for (std::int64_t ch = 0; ch + 1 < var.channels; ++ch) {
      if (rng.uniform() >= frac) continue;
      for (int w : var.writer_convs) {
        auto& conv = net.layer_as<nn::Conv2d>(w);
        const std::int64_t len =
            conv.in_channels() * conv.kernel() * conv.kernel();
        float* p = conv.weight().value.data() + ch * len;
        for (std::int64_t q = 0; q < len; ++q) p[q] = 0.f;
      }
      for (int r : var.reader_convs) {
        auto& conv = net.layer_as<nn::Conv2d>(r);
        const std::int64_t rs = conv.kernel() * conv.kernel();
        for (std::int64_t k = 0; k < conv.out_channels(); ++k) {
          float* p =
              conv.weight().value.data() + (k * conv.in_channels() + ch) * rs;
          for (std::int64_t q = 0; q < rs; ++q) p[q] = 0.f;
        }
      }
      ++killed;
    }
  }
  // Neutralize every BN channel whose variable we touched: a killed
  // channel's BN input is all-zero, so (x - 0)/sqrt(1) * g + 0 == 0 keeps
  // the function identical. (Safe for live channels too only if their
  // stats were the defaults, so only neutralize channels that are now
  // weight-free in all writers.)
  for (int id : net.nodes_of_type<nn::BatchNorm2d>()) {
    auto& bn = net.layer_as<nn::BatchNorm2d>(id);
    const int v = analysis.var_of(net.node(id).inputs[0]);
    const auto& var = analysis.vars[std::size_t(v)];
    if (var.writer_convs.empty()) continue;
    for (std::int64_t ch = 0; ch < bn.channels(); ++ch) {
      bool dead_everywhere = true;
      for (int w : var.writer_convs) {
        const auto& conv = net.layer_as<nn::Conv2d>(w);
        if (conv.out_channel_max_abs(ch) > 0.f) dead_everywhere = false;
      }
      if (!dead_everywhere) continue;
      bn.beta().value.at(ch) = 0.f;
      bn.running_mean().at(ch) = 0.f;
      bn.running_var().at(ch) = 1.f;
    }
  }
  return killed;
}

struct PropertyCase {
  const char* model;
  std::uint64_t seed;
};

class FunctionPreservationTest : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(FunctionPreservationTest, UnionReconfigureIsExact) {
  const auto [model, seed] = GetParam();
  auto cfg = tiny_cfg();
  cfg.seed = seed;
  auto net = models::build_by_name(model, cfg);
  const std::int64_t killed = kill_random_var_channels(net, 0.3, seed * 7 + 1);

  Rng rng(seed);
  Tensor x = Tensor::randn({2, 3, 8, 8}, rng);
  Tensor before = net.forward(x, false).clone();

  prune::Reconfigurer rec(net, 1e-4f);
  const auto stats = rec.reconfigure();
  if (killed > 0) {
    // Something must have been pruned or removed whenever kills happened
    // on both sides of some variable; at 30% kill rate this is certain.
    EXPECT_TRUE(stats.changed);
  }
  Tensor after = net.forward(x, false);
  ASSERT_EQ(before.shape(), after.shape());
  for (std::int64_t i = 0; i < before.numel(); ++i) {
    EXPECT_NEAR(before.data()[i], after.data()[i],
                1e-3f * std::max(1.f, std::fabs(before.data()[i])))
        << model << " seed " << seed << " at " << i;
  }
}

TEST_P(FunctionPreservationTest, ReconfigureIsIdempotent) {
  const auto [model, seed] = GetParam();
  auto cfg = tiny_cfg();
  cfg.seed = seed;
  auto net = models::build_by_name(model, cfg);
  kill_random_var_channels(net, 0.3, seed + 13);
  prune::Reconfigurer rec(net, 1e-4f);
  rec.reconfigure();
  const auto second = rec.reconfigure();
  EXPECT_FALSE(second.changed) << model << " seed " << seed;
  EXPECT_EQ(second.channels_before, second.channels_after);
  EXPECT_EQ(second.blocks_removed, 0);
}

TEST_P(FunctionPreservationTest, AnalyticUnionFlopsMatchSurgery) {
  const auto [model, seed] = GetParam();
  auto cfg = tiny_cfg();
  cfg.seed = seed;
  auto net = models::build_by_name(model, cfg);
  kill_random_var_channels(net, 0.25, seed + 29);

  // Analytic conv FLOPs from the channel analysis (pre-surgery)...
  prune::Reconfigurer rec0(net, 1e-4f);
  rec0.zero_small_weights();
  const auto analysis = prune::analyze_channels(net, 1e-4f);
  const auto shapes = cost::infer_shapes(net, Shape{1, 3, 8, 8});
  double analytic = 0;
  for (int id : net.nodes_of_type<nn::Conv2d>()) {
    const auto& conv = net.layer_as<nn::Conv2d>(id);
    const auto& keep_in = analysis.keep_of(net.node(id).inputs[0]);
    const auto& keep_out = analysis.keep_of(id);
    const double in = keep_in.empty() ? double(conv.in_channels())
                                      : double(keep_in.size());
    const double out = keep_out.empty() ? double(conv.out_channels())
                                        : double(keep_out.size());
    const Shape& os = shapes[std::size_t(id)];
    analytic += 2.0 * in * out * conv.kernel() * conv.kernel() * os[2] * os[3];
  }

  // ...must equal the FlopsModel's conv total after physical surgery,
  // provided no whole branch is removed (branch removal changes the graph
  // beyond the per-conv keep-set arithmetic).
  prune::Reconfigurer rec(net, 1e-4f);
  const auto stats = rec.reconfigure();
  if (stats.blocks_removed > 0) GTEST_SKIP() << "branch removed; not comparable";
  cost::FlopsModel fm(net, {3, 8, 8});
  double surgery = 0;
  for (const auto& lf : fm.layers()) {
    if (lf.type == "Conv2d") surgery += lf.forward;
  }
  EXPECT_NEAR(surgery, analytic, 1e-6 * analytic) << model << " seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(
    ModelsAndSeeds, FunctionPreservationTest,
    ::testing::Values(PropertyCase{"resnet8", 1}, PropertyCase{"resnet8", 2},
                      PropertyCase{"resnet20", 3}, PropertyCase{"resnet20", 4},
                      PropertyCase{"resnet50", 5}, PropertyCase{"vgg11", 6},
                      PropertyCase{"vgg13", 7}, PropertyCase{"resnet56", 8}));

}  // namespace
}  // namespace pt
