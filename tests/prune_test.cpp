// Pruning machinery tests: group-lasso math (Eq. 2), penalty calibration
// (Eq. 3), channel-variable analysis (channel union), reconfiguration
// surgery with exact function preservation, dead-branch (layer) removal,
// channel gating, sparsity monitoring, and snapshots.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <map>
#include <string>

#include "core/trainer.h"
#include "cost/flops.h"
#include "data/synthetic.h"
#include "models/builders.h"
#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/channel_index.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "prune/channel_analysis.h"
#include "prune/gating.h"
#include "prune/group_lasso.h"
#include "prune/reconfigure.h"
#include "prune/snapshot.h"
#include "prune/sparsity_monitor.h"
#include "prune/strategy.h"
#include "prune/strategy_zoo.h"

namespace pt::prune {
namespace {

models::ModelConfig tiny_cfg() {
  models::ModelConfig cfg;
  cfg.image_h = 8;
  cfg.image_w = 8;
  cfg.classes = 4;
  cfg.width_mult = 0.25f;
  return cfg;
}

/// Zeroes output channel `k` of a conv and neutralizes the following BN
/// channel so pruning it preserves the function exactly.
void kill_out_channel(graph::Network& net, int conv_node, int bn_node,
                      std::int64_t k) {
  auto& conv = net.layer_as<nn::Conv2d>(conv_node);
  const std::int64_t len = conv.in_channels() * conv.kernel() * conv.kernel();
  for (std::int64_t q = 0; q < len; ++q) {
    conv.weight().value.data()[k * len + q] = 0.f;
  }
  auto& bn = net.layer_as<nn::BatchNorm2d>(bn_node);
  bn.gamma().value.at(k) = 1.f;
  bn.beta().value.at(k) = 0.f;
  bn.running_mean().at(k) = 0.f;
  bn.running_var().at(k) = 1.f;
}

/// Zeroes input channel `c` of a conv.
void kill_in_channel(graph::Network& net, int conv_node, std::int64_t c) {
  auto& conv = net.layer_as<nn::Conv2d>(conv_node);
  const std::int64_t rs = conv.kernel() * conv.kernel();
  for (std::int64_t k = 0; k < conv.out_channels(); ++k) {
    for (std::int64_t q = 0; q < rs; ++q) {
      conv.weight().value.data()[(k * conv.in_channels() + c) * rs + q] = 0.f;
    }
  }
}

// --- Group lasso -------------------------------------------------------------

TEST(GroupLasso, LossMatchesHandComputation) {
  graph::Network net;
  Rng rng(1);
  const int input = net.add_input();
  auto conv = std::make_shared<nn::Conv2d>(2, 2, 1, 1, 0, rng);
  // W[k][c][0][0] = [[1, 2], [3, 4]] (k major).
  conv->weight().value = Tensor::from_values({2, 2, 1, 1}, {1, 2, 3, 4});
  const int c = net.add_layer(conv, input);
  net.set_output(c);
  net.info.first_conv = -1;  // regularize everything, including in-groups
  GroupLassoRegularizer reg(net);
  // Out groups: ||(1,2)|| + ||(3,4)|| ; in groups: ||(1,3)|| + ||(2,4)||.
  const double expected = std::sqrt(5.0) + std::sqrt(25.0) + std::sqrt(10.0) +
                          std::sqrt(20.0);
  EXPECT_NEAR(reg.loss(), expected, 1e-6);
}

TEST(GroupLasso, FirstConvInputGroupsExcluded) {
  graph::Network net;
  Rng rng(2);
  const int input = net.add_input();
  auto conv = std::make_shared<nn::Conv2d>(2, 2, 1, 1, 0, rng);
  conv->weight().value = Tensor::from_values({2, 2, 1, 1}, {1, 2, 3, 4});
  const int c = net.add_layer(conv, input);
  net.set_output(c);
  net.info.first_conv = c;
  GroupLassoRegularizer reg(net);
  EXPECT_NEAR(reg.loss(), std::sqrt(5.0) + std::sqrt(25.0), 1e-6);
}

TEST(GroupLasso, GradientMatchesFiniteDifference) {
  graph::Network net;
  Rng rng(3);
  const int input = net.add_input();
  auto conv = std::make_shared<nn::Conv2d>(3, 4, 3, 1, 1, rng);
  const int c = net.add_layer(conv, input);
  net.set_output(c);
  net.info.first_conv = -1;
  GroupLassoRegularizer reg(net);
  const float lambda = 0.37f;
  auto& w = net.layer_as<nn::Conv2d>(c).weight();
  w.grad.fill(0.f);
  reg.add_gradients(lambda);
  const float eps = 1e-3f;
  for (std::int64_t i = 0; i < w.value.numel(); i += 5) {
    const float orig = w.value.data()[i];
    w.value.data()[i] = orig + eps;
    const double lp = lambda * reg.loss();
    w.value.data()[i] = orig - eps;
    const double lm = lambda * reg.loss();
    w.value.data()[i] = orig;
    EXPECT_NEAR(w.grad.data()[i], (lp - lm) / (2 * eps), 2e-3) << "at " << i;
  }
}

TEST(GroupLasso, ZeroGroupHasZeroSubgradient) {
  graph::Network net;
  Rng rng(4);
  const int input = net.add_input();
  auto conv = std::make_shared<nn::Conv2d>(1, 2, 1, 1, 0, rng);
  conv->weight().value = Tensor::from_values({2, 1, 1, 1}, {0.f, 1.f});
  const int c = net.add_layer(conv, input);
  net.set_output(c);
  net.info.first_conv = c;
  GroupLassoRegularizer reg(net);
  auto& w = net.layer_as<nn::Conv2d>(c).weight();
  w.grad.fill(0.f);
  reg.add_gradients(1.f);
  EXPECT_EQ(w.grad.at(0, 0, 0, 0), 0.f);   // zero group: subgradient 0
  EXPECT_NEAR(w.grad.at(1, 0, 0, 0), 1.f, 1e-6f);  // w/||w|| = 1
}

TEST(GroupLasso, RegularizationShrinksWeights) {
  // Pure-lasso gradient descent must drive group norms toward zero.
  graph::Network net;
  Rng rng(5);
  const int input = net.add_input();
  auto conv = std::make_shared<nn::Conv2d>(4, 4, 3, 1, 1, rng);
  const int c = net.add_layer(conv, input);
  net.set_output(c);
  net.info.first_conv = -1;
  GroupLassoRegularizer reg(net);
  auto& w = net.layer_as<nn::Conv2d>(c).weight();
  const double before = reg.loss();
  for (int step = 0; step < 50; ++step) {
    w.grad.fill(0.f);
    reg.add_gradients(1.f);
    for (std::int64_t i = 0; i < w.value.numel(); ++i) {
      w.value.data()[i] -= 0.01f * w.grad.data()[i];
    }
  }
  EXPECT_LT(reg.loss(), before);
}

TEST(Calibration, LambdaAchievesExactRatio) {
  for (float ratio : {0.05f, 0.1f, 0.2f, 0.25f, 0.3f}) {
    const double class_loss = 2.3;
    const double lasso = 140.0;
    const float lambda = calibrate_lambda(ratio, class_loss, lasso);
    EXPECT_NEAR(lasso_penalty_ratio(lambda, class_loss, lasso), ratio, 1e-6);
  }
}

TEST(Calibration, RejectsBadInputs) {
  EXPECT_THROW(calibrate_lambda(0.f, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(calibrate_lambda(1.f, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(calibrate_lambda(0.2f, 1.0, 0.0), std::invalid_argument);
}

// --- Channel analysis ---------------------------------------------------------

TEST(ChannelAnalysis, AdjacentConvsIntersectionRule) {
  // conv1 -> bn -> relu -> conv2 chain: a channel survives unless BOTH
  // conv1's out-group and conv2's in-group sparsified it.
  graph::Network net;
  Rng rng(10);
  const int input = net.add_input();
  auto c1 = std::make_shared<nn::Conv2d>(2, 4, 3, 1, 1, rng);
  const int n1 = net.add_layer(c1, input);
  auto bn = std::make_shared<nn::BatchNorm2d>(4);
  const int n2 = net.add_layer(bn, n1);
  auto relu = std::make_shared<nn::ReLU>();
  const int n3 = net.add_layer(relu, n2);
  auto c2 = std::make_shared<nn::Conv2d>(4, 2, 3, 1, 1, rng);
  const int n4 = net.add_layer(c2, n3);
  net.set_output(n4);
  net.info.first_conv = n1;

  // Channel 0: dead on both sides -> pruned. Channel 1: dead only in
  // conv1-out -> kept (conv2 still reads it). Channel 2: dead only in
  // conv2-in -> kept. Channel 3: alive both sides -> kept.
  kill_out_channel(net, n1, n2, 0);
  kill_in_channel(net, n4, 0);
  kill_out_channel(net, n1, n2, 1);
  kill_in_channel(net, n4, 2);

  const auto analysis = analyze_channels(net, 1e-4f);
  const auto& keep = analysis.keep_of(n1);
  EXPECT_EQ(keep, (std::vector<std::int64_t>{1, 2, 3}));
}

TEST(ChannelAnalysis, InputVariableStaysDense) {
  auto net = models::build_resnet_basic(8, tiny_cfg());
  const auto analysis = analyze_channels(net, 1e10f);  // everything "sparse"
  const auto& keep0 = analysis.vars[static_cast<std::size_t>(
      analysis.var_of(0))].keep;
  EXPECT_EQ(static_cast<std::int64_t>(keep0.size()), 3);  // RGB input kept
}

TEST(ChannelAnalysis, ResidualStageSharesOneVariable) {
  // All convs bordering a residual stage's shared nodes must land in the
  // same channel variable (channel union).
  auto net = models::build_resnet_basic(20, tiny_cfg());
  const auto analysis = analyze_channels(net, 1e-4f);
  // Blocks 0..2 are stage 0 (identity shortcuts to the stem output).
  const auto& blk0 = net.info.blocks[0];
  const auto& blk1 = net.info.blocks[1];
  const auto& blk2 = net.info.blocks[2];
  const int v_add0 = analysis.var_of(blk0.add_node);
  EXPECT_EQ(v_add0, analysis.var_of(blk1.add_node));
  EXPECT_EQ(v_add0, analysis.var_of(blk2.add_node));
  // The stem output is the same variable too (identity short-cut).
  EXPECT_EQ(v_add0, analysis.var_of(net.info.first_conv));
  // Stage 1 starts with a projection: new variable.
  const auto& blk3 = net.info.blocks[3];
  EXPECT_NE(v_add0, analysis.var_of(blk3.add_node));
}

TEST(ChannelAnalysis, UnionKeepsChannelAliveAnywhereInStage) {
  auto net = models::build_resnet_basic(8, tiny_cfg());  // 1 block per stage
  // Stage 0: stem + block0. Zero stem-out channel 0 and block conv2-out
  // channel 0, but leave block conv1's *input* weights for channel 0 alive:
  // union must keep channel 0.
  const auto& blk = net.info.blocks[0];
  kill_out_channel(net, net.info.first_conv, net.info.first_conv + 1, 0);
  kill_out_channel(net, blk.path_convs[1], blk.path_nodes[4], 0);
  const auto analysis = analyze_channels(net, 1e-4f);
  const auto& keep = analysis.keep_of(blk.add_node);
  EXPECT_TRUE(std::find(keep.begin(), keep.end(), 0) != keep.end());
}

TEST(ChannelAnalysis, EmptyVariableKeepsStrongestChannel) {
  graph::Network net;
  Rng rng(11);
  const int input = net.add_input();
  auto c1 = std::make_shared<nn::Conv2d>(1, 3, 1, 1, 0, rng);
  c1->weight().value = Tensor::from_values({3, 1, 1, 1}, {0.f, 1e-6f, 0.f});
  const int n1 = net.add_layer(c1, input);
  auto c2 = std::make_shared<nn::Conv2d>(3, 1, 1, 1, 0, rng);
  c2->weight().value.fill(0.f);
  const int n2 = net.add_layer(c2, n1);
  net.set_output(n2);
  net.info.first_conv = n1;
  const auto analysis = analyze_channels(net, 1e-4f);
  EXPECT_EQ(analysis.keep_of(n1), (std::vector<std::int64_t>{1}));
}

// --- Reconfiguration -----------------------------------------------------------

TEST(Reconfigure, FunctionPreservedExactlyWhenChannelsDead) {
  // VGG-style chain: kill a channel on both sides, reconfigure, and the
  // network must compute the *same* outputs (eval mode).
  auto cfg = tiny_cfg();
  auto net = models::build_vgg(11, cfg);
  Rng rng(12);
  // conv 0 out-channel 1: vgg stage0 conv -> node ids: conv=1, bn=2.
  kill_out_channel(net, 1, 2, 1);
  const auto convs = net.nodes_of_type<nn::Conv2d>();
  kill_in_channel(net, convs[1], 1);

  Tensor x = Tensor::randn({2, 3, 8, 8}, rng);
  Tensor before = net.forward(x, false).clone();
  Reconfigurer rec(net, 1e-4f);
  const auto stats = rec.reconfigure();
  EXPECT_TRUE(stats.changed);
  EXPECT_EQ(stats.channels_after, stats.channels_before - 1);
  Tensor after = net.forward(x, false);
  ASSERT_EQ(before.shape(), after.shape());
  for (std::int64_t i = 0; i < before.numel(); ++i) {
    EXPECT_NEAR(before.data()[i], after.data()[i], 1e-4f) << "at " << i;
  }
}

TEST(Reconfigure, ResidualStageFunctionPreserved) {
  auto cfg = tiny_cfg();
  auto net = models::build_resnet_basic(8, cfg);
  Rng rng(13);
  // Kill channel 2 of the stage-0 variable everywhere it is written or
  // read: stem out, block conv1 in, block conv2 out (+BN), next stage
  // projection & conv1 in.
  const auto& blk0 = net.info.blocks[0];
  const auto& blk1 = net.info.blocks[1];
  kill_out_channel(net, net.info.first_conv, net.info.first_conv + 1, 2);
  kill_in_channel(net, blk0.path_convs[0], 2);
  kill_out_channel(net, blk0.path_convs[1], blk0.path_nodes[4], 2);
  kill_in_channel(net, blk1.path_convs[0], 2);
  kill_in_channel(net, blk1.shortcut_conv, 2);

  Tensor x = Tensor::randn({2, 3, 8, 8}, rng);
  Tensor before = net.forward(x, false).clone();
  Reconfigurer rec(net, 1e-4f);
  const auto stats = rec.reconfigure();
  EXPECT_TRUE(stats.changed);
  Tensor after = net.forward(x, false);
  for (std::int64_t i = 0; i < before.numel(); ++i) {
    EXPECT_NEAR(before.data()[i], after.data()[i], 1e-4f);
  }
}

TEST(Reconfigure, MomentumPreservedForSurvivors) {
  auto net = models::build_vgg(11, tiny_cfg());
  // Tag momentum of conv1 (the second conv).
  const auto convs = net.nodes_of_type<nn::Conv2d>();
  auto& conv = net.layer_as<nn::Conv2d>(convs[1]);
  for (std::int64_t i = 0; i < conv.weight().momentum.numel(); ++i) {
    conv.weight().momentum.data()[i] = float(i);
  }
  kill_out_channel(net, 1, 2, 0);
  kill_in_channel(net, convs[1], 0);
  const std::int64_t in_before = conv.in_channels();
  const std::int64_t rs = conv.kernel() * conv.kernel();
  const float expected = conv.weight().momentum.at(0, 1, 0, 0);
  Reconfigurer rec(net, 1e-4f);
  rec.reconfigure();
  // Input channel 0 removed: new [0][0] was old [0][1].
  EXPECT_EQ(conv.in_channels(), in_before - 1);
  EXPECT_FLOAT_EQ(conv.weight().momentum.at(0, 0, 0, 0), expected);
  (void)rs;
}

TEST(Reconfigure, DeadBranchRemovedAndBypassed) {
  auto net = models::build_resnet_basic(20, tiny_cfg());
  // Kill every out-channel of block 1's first conv: whole branch dies.
  const auto& blk = net.info.blocks[1];
  auto& conv = net.layer_as<nn::Conv2d>(blk.path_convs[0]);
  conv.weight().value.fill(0.f);
  const std::int64_t convs_before = models::count_conv_layers(net);
  Reconfigurer rec(net, 1e-4f);
  const auto stats = rec.reconfigure();
  EXPECT_EQ(stats.blocks_removed, 1);
  EXPECT_EQ(stats.convs_removed, 2);
  EXPECT_EQ(models::count_conv_layers(net), convs_before - 2);
  EXPECT_TRUE(net.info.blocks[1].removed);
  // The network still trains and evaluates.
  Rng rng(14);
  Tensor x = Tensor::randn({2, 3, 8, 8}, rng);
  EXPECT_EQ(net.forward(x, false).shape(), (Shape{2, 4}));
}

TEST(Reconfigure, DeadBranchFunctionPreservedWithIdentityShortcut) {
  auto net = models::build_resnet_basic(8, tiny_cfg());
  const auto& blk = net.info.blocks[0];  // identity shortcut
  // Kill the *last* conv of the branch and neutralize its BN: branch
  // contributes exactly zero, so removal is exact.
  auto& conv = net.layer_as<nn::Conv2d>(blk.path_convs[1]);
  conv.weight().value.fill(0.f);
  auto& bn = net.layer_as<nn::BatchNorm2d>(blk.path_nodes[4]);
  bn.beta().value.fill(0.f);
  bn.running_mean().fill(0.f);
  bn.running_var().fill(1.f);

  Rng rng(15);
  Tensor x = Tensor::randn({2, 3, 8, 8}, rng);
  Tensor before = net.forward(x, false).clone();
  Reconfigurer rec(net, 1e-4f);
  const auto stats = rec.reconfigure();
  EXPECT_EQ(stats.blocks_removed, 1);
  Tensor after = net.forward(x, false);
  for (std::int64_t i = 0; i < before.numel(); ++i) {
    EXPECT_NEAR(before.data()[i], after.data()[i], 1e-4f);
  }
}

TEST(Reconfigure, NoopWhenNothingSparse) {
  auto net = models::build_resnet_basic(20, tiny_cfg());
  Reconfigurer rec(net, 1e-8f);  // threshold below any initialized weight
  const auto stats = rec.reconfigure();
  EXPECT_FALSE(stats.changed);
  EXPECT_EQ(stats.channels_before, stats.channels_after);
}

TEST(Reconfigure, ClassifierInputsFollowLastStage) {
  auto net = models::build_vgg(11, tiny_cfg());
  const auto convs = net.nodes_of_type<nn::Conv2d>();
  const int last_conv = convs.back();
  auto& conv = net.layer_as<nn::Conv2d>(last_conv);
  const int bn_after = net.consumer_map()[static_cast<std::size_t>(last_conv)][0];
  kill_out_channel(net, last_conv, bn_after, 3);
  auto& fc = net.layer_as<nn::Linear>(net.info.classifier);
  const std::int64_t fc_in_before = fc.in_features();
  Reconfigurer rec(net, 1e-4f);
  rec.reconfigure();
  EXPECT_EQ(fc.in_features(), fc_in_before - 1);
  EXPECT_EQ(conv.out_channels(), fc_in_before - 1);
}

// --- Channel gating -------------------------------------------------------------

TEST(Gating, InsertsGatesAndPreservesFunction) {
  auto net = models::build_resnet_basic(8, tiny_cfg());
  Rng rng(16);
  const auto& blk = net.info.blocks[1];  // stage-1 block (projection shortcut)
  // Make the branch's first conv ignore channel 1 (its own dense_in is a
  // proper subset of the union) and its last conv emit nothing on channel 0.
  kill_in_channel(net, blk.path_convs[0], 1);
  kill_out_channel(net, blk.path_convs[1], blk.path_nodes[4], 0);

  Tensor x = Tensor::randn({2, 3, 8, 8}, rng);
  // Union reconfigure first (gating builds on the union model).
  Reconfigurer rec(net, 1e-4f);
  rec.reconfigure();
  Tensor union_out = net.forward(x, false).clone();

  const auto stats = apply_channel_gating(net, 1e-4f);
  EXPECT_EQ(stats.selects_inserted, 1);
  EXPECT_EQ(stats.scatters_inserted, 1);
  EXPECT_GT(stats.channels_gated_away, 0);

  Tensor gated_out = net.forward(x, false);
  ASSERT_EQ(union_out.shape(), gated_out.shape());
  for (std::int64_t i = 0; i < union_out.numel(); ++i) {
    EXPECT_NEAR(union_out.data()[i], gated_out.data()[i], 1e-4f) << "at " << i;
  }
}

TEST(Gating, ReducesConvFlopsVsUnion) {
  auto net = models::build_resnet_basic(8, tiny_cfg());
  const auto& blk = net.info.blocks[1];
  kill_in_channel(net, blk.path_convs[0], 1);
  kill_in_channel(net, blk.path_convs[0], 2);
  Reconfigurer rec(net, 1e-4f);
  rec.reconfigure();
  cost::FlopsModel union_flops(net, {3, 8, 8});
  apply_channel_gating(net, 1e-4f);
  cost::FlopsModel gated_flops(net, {3, 8, 8});
  EXPECT_LT(gated_flops.inference_flops(), union_flops.inference_flops());
}

TEST(Gating, NoGatesWhenBranchFullyDense) {
  auto net = models::build_resnet_basic(8, tiny_cfg());
  Reconfigurer rec(net, 1e-8f);
  rec.reconfigure();
  const auto stats = apply_channel_gating(net, 1e-8f);
  EXPECT_EQ(stats.selects_inserted, 0);
  EXPECT_EQ(stats.scatters_inserted, 0);
}

// --- Sparsity monitor ------------------------------------------------------------

TEST(SparsityMonitor, RecordsPerChannelMaxAbs) {
  auto net = models::build_vgg(11, tiny_cfg());
  SparsityMonitor mon(net);
  mon.record(0);
  const auto convs = net.nodes_of_type<nn::Conv2d>();
  auto& conv = net.layer_as<nn::Conv2d>(convs[0]);
  conv.weight().value.fill(0.f);
  mon.record(1);
  const auto& h = mon.history()[0];
  ASSERT_EQ(h.max_abs.size(), 2u);
  EXPECT_GT(h.max_abs[0][0], 0.f);
  EXPECT_EQ(h.max_abs[1][0], 0.f);
}

TEST(SparsityMonitor, CountsRevivals) {
  auto net = models::build_vgg(11, tiny_cfg());
  SparsityMonitor mon(net);
  const auto convs = net.nodes_of_type<nn::Conv2d>();
  auto& conv = net.layer_as<nn::Conv2d>(convs[0]);
  conv.weight().value.fill(0.f);
  mon.record(0);
  EXPECT_EQ(mon.count_revivals(1e-4f), 0);
  conv.weight().value.fill(0.5f);  // everything revives
  mon.record(1);
  EXPECT_EQ(mon.count_revivals(1e-4f), conv.out_channels());
}

TEST(SparsityMonitor, ReconfigurationResetsComparisonWindow) {
  auto net = models::build_vgg(11, tiny_cfg());
  SparsityMonitor mon(net);
  mon.record(0);
  // Shrink conv0 between records: widths differ, no revival comparison.
  const auto convs = net.nodes_of_type<nn::Conv2d>();
  auto& conv = net.layer_as<nn::Conv2d>(convs[0]);
  std::vector<std::int64_t> keep_in{0, 1, 2}, keep_out;
  for (std::int64_t k = 1; k < conv.out_channels(); ++k) keep_out.push_back(k);
  conv.shrink(keep_in, keep_out);
  mon.record(1);
  EXPECT_EQ(mon.count_revivals(1e-4f), 0);
}

TEST(LayerDensities, ReflectSparsity) {
  auto net = models::build_vgg(11, tiny_cfg());
  kill_out_channel(net, 1, 2, 0);
  const auto densities = layer_densities(net, 1e-4f);
  ASSERT_FALSE(densities.empty());
  const auto& first = densities[0];
  auto& conv = net.layer_as<nn::Conv2d>(1);
  EXPECT_NEAR(first.channel_density,
              double(conv.out_channels() - 1) / double(conv.out_channels()), 1e-9);
  EXPECT_LT(first.weight_density, 1.0);
  EXPECT_GT(first.weight_density, 0.0);
}

// --- Snapshots -------------------------------------------------------------------

TEST(Snapshot, RoundTripRestoresEverything) {
  auto net = models::build_resnet_basic(8, tiny_cfg());
  Rng rng(17);
  Tensor x = Tensor::randn({2, 3, 8, 8}, rng);
  // Mutate BN running stats via a training forward.
  net.forward(x, true);
  const Snapshot snap = save_state(net);
  Tensor before = net.forward(x, false).clone();
  // Scramble all state.
  for (nn::Param* p : net.params()) p->value.fill(0.123f);
  load_state(net, snap);
  Tensor after = net.forward(x, false);
  for (std::int64_t i = 0; i < before.numel(); ++i) {
    EXPECT_FLOAT_EQ(before.data()[i], after.data()[i]);
  }
}

TEST(Snapshot, SizeMismatchThrows) {
  auto net = models::build_resnet_basic(8, tiny_cfg());
  Snapshot snap = save_state(net);
  snap.values.pop_back();
  EXPECT_THROW(load_state(net, snap), std::invalid_argument);
  snap.values.push_back(0.f);
  snap.values.push_back(0.f);
  EXPECT_THROW(load_state(net, snap), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Strategy registry: names, creation, parameter validation, help table.

TEST(StrategyRegistry, RegistersTheBuiltinZoo) {
  const auto names = StrategyRegistry::global().names();
  for (const char* expected : {"group_lasso", "dsd", "dst", "channel_prop"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
}

TEST(StrategyRegistry, UnknownStrategyOrParamThrows) {
  EXPECT_THROW(StrategyRegistry::global().create("no_such_strategy"),
               std::invalid_argument);
  EXPECT_THROW(
      StrategyRegistry::global().create("dsd", {{"bogus_knob", "1"}}),
      std::invalid_argument);
  EXPECT_THROW(
      StrategyRegistry::global().create("group_lasso", {{"ratio", "1.5"}}),
      std::invalid_argument);
  EXPECT_THROW(
      StrategyRegistry::global().create("dst", {{"init", "not-a-number"}}),
      std::invalid_argument);
}

TEST(StrategyRegistry, HelpListsEveryStrategyAndParam) {
  const std::string help = StrategyRegistry::global().help();
  for (const char* token : {"group_lasso", "dsd", "dst", "channel_prop",
                            "sparsity", "threshold_lr", "prune_fraction"}) {
    EXPECT_NE(help.find(token), std::string::npos) << token;
  }
}

// ---------------------------------------------------------------------------
// Strategy conformance suite: every registered strategy must compose with
// mid-phase checkpoint resume, guardian rollback-replay, and the
// deterministic thread pool — all bitwise — and must respect the
// prune_min_channels floor.

namespace fs = std::filesystem;

fs::path strategy_scratch_dir(const std::string& tag) {
  const fs::path p = fs::temp_directory_path() /
                     ("pt_strategy_" + tag + "_" + std::to_string(::getpid()));
  fs::remove_all(p);
  fs::create_directories(p);
  return p;
}

data::SyntheticSpec conformance_data() {
  data::SyntheticSpec spec;
  spec.name = "tiny";
  spec.classes = 8;
  spec.channels = 3;
  spec.height = 8;
  spec.width = 8;
  spec.train_samples = 256;
  spec.test_samples = 128;
  spec.noise = 0.8f;
  spec.max_shift = 2;
  spec.seed = 5;
  return spec;
}

graph::Network conformance_net() {
  models::ModelConfig mc;
  mc.image_h = 8;
  mc.image_w = 8;
  mc.classes = 8;
  mc.width_mult = 0.5f;
  mc.seed = 21;
  return models::build_resnet_basic(8, mc);
}

/// Parameters aggressive enough that every strategy visibly acts within
/// the 6 proxy epochs the conformance runs use.
std::map<std::string, std::string> aggressive_params(const std::string& name) {
  if (name == "group_lasso") return {{"ratio", "0.3"}, {"boost", "2000"}};
  if (name == "dsd") {
    return {{"sparsity", "0.5"}, {"sparse_begin", "0.2"}, {"sparse_end", "0.8"}};
  }
  if (name == "dst") {
    return {{"alpha", "2"}, {"threshold_lr", "0.1"}, {"beta", "1"},
            {"init", "0.05"}};
  }
  if (name == "channel_prop") {
    return {{"decay", "0.5"}, {"prune_fraction", "0.5"}, {"warmup", "1"}};
  }
  return {};
}

core::TrainConfig conformance_cfg(const std::string& strategy) {
  core::TrainConfig cfg;
  cfg.policy = core::PrunePolicy::kPruneTrain;
  cfg.strategy = strategy;
  cfg.strategy_params = aggressive_params(strategy);
  cfg.epochs = 6;
  cfg.batch_size = 64;
  cfg.base_lr = 0.1f;
  cfg.weight_decay = 1e-4f;
  cfg.lr_milestones = {3, 5};
  cfg.reconfig_interval = 2;
  cfg.eval_interval = 2;
  return cfg;
}

void expect_params_bitwise(graph::Network& a, graph::Network& b) {
  auto pa = a.params();
  auto pb = b.params();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    ASSERT_EQ(pa[i]->value.numel(), pb[i]->value.numel()) << "param " << i;
    for (std::int64_t q = 0; q < pa[i]->value.numel(); ++q) {
      ASSERT_EQ(pa[i]->value.data()[q], pb[i]->value.data()[q])
          << "param " << i << "[" << q << "]";
    }
  }
}

class StrategyConformanceTest : public ::testing::TestWithParam<std::string> {};

TEST_P(StrategyConformanceTest, CheckpointResumeBitwise) {
  const std::string name = GetParam();
  auto data = data::SyntheticImageDataset(conformance_data());
  const fs::path dir = strategy_scratch_dir("resume_" + name);

  core::TrainConfig cfg = conformance_cfg(name);
  cfg.checkpoint_dir = dir.string();
  graph::Network full_net = conformance_net();
  core::PruneTrainer full(full_net, data, cfg);
  const core::TrainResult r_full = full.run();

  // Resume mid-phase, from the end-of-epoch-3 checkpoint, into a freshly
  // built dense network. The strategy's serialized state (masks,
  // thresholds, saliency) must land in the new trainer and replay the
  // remaining epochs bitwise.
  core::TrainConfig rcfg = conformance_cfg(name);
  rcfg.resume_from = (dir / "ckpt-epoch-3.bin").string();
  graph::Network res_net = conformance_net();
  core::PruneTrainer resumed(res_net, data, rcfg);
  const core::TrainResult r_res = resumed.run();

  ASSERT_EQ(r_res.epochs.size(), r_full.epochs.size());
  EXPECT_DOUBLE_EQ(r_res.epochs.back().train_loss,
                   r_full.epochs.back().train_loss);
  EXPECT_DOUBLE_EQ(r_res.epochs.back().lasso_loss,
                   r_full.epochs.back().lasso_loss);
  EXPECT_DOUBLE_EQ(r_res.final_test_acc, r_full.final_test_acc);
  EXPECT_EQ(r_res.final_channels, r_full.final_channels);
  expect_params_bitwise(full_net, res_net);
  fs::remove_all(dir);
}

TEST_P(StrategyConformanceTest, ResumeRejectsStrategyMismatch) {
  const std::string name = GetParam();
  auto data = data::SyntheticImageDataset(conformance_data());
  const fs::path dir = strategy_scratch_dir("mismatch_" + name);

  core::TrainConfig cfg = conformance_cfg(name);
  cfg.epochs = 2;
  cfg.checkpoint_dir = dir.string();
  graph::Network net = conformance_net();
  core::PruneTrainer trainer(net, data, cfg);
  (void)trainer.run();

  const std::string other = name == "dst" ? "channel_prop" : "dst";
  core::TrainConfig rcfg = conformance_cfg(other);
  rcfg.epochs = 2;
  rcfg.resume_from = (dir / "ckpt-latest.bin").string();
  graph::Network res_net = conformance_net();
  EXPECT_THROW(core::PruneTrainer(res_net, data, rcfg), std::runtime_error);
  fs::remove_all(dir);
}

TEST_P(StrategyConformanceTest, RollbackReplayBitwise) {
  const std::string name = GetParam();
  auto data = data::SyntheticImageDataset(conformance_data());
  const fs::path clean_dir = strategy_scratch_dir("rb_clean_" + name);
  const fs::path fault_dir = strategy_scratch_dir("rb_fault_" + name);

  core::TrainConfig clean_cfg = conformance_cfg(name);
  clean_cfg.checkpoint_dir = clean_dir.string();
  clean_cfg.max_rollbacks = 2;
  graph::Network clean_net = conformance_net();
  core::PruneTrainer clean(clean_net, data, clean_cfg);
  const core::TrainResult r_clean = clean.run();
  EXPECT_EQ(clean.recovery_report().rollbacks, 0);

  // A NaN gradient mid-epoch-3 triggers the guardian: rollback to the last
  // good checkpoint must restore the strategy state too, so the replay
  // (lr_cut=1, fault spent) reproduces the clean run bitwise.
  core::TrainConfig fault_cfg = conformance_cfg(name);
  fault_cfg.checkpoint_dir = fault_dir.string();
  fault_cfg.max_rollbacks = 2;
  fault_cfg.fault_spec = "nan-grad:epoch=3,step=1";
  fault_cfg.rollback_lr_cut = 1.0f;
  graph::Network fault_net = conformance_net();
  core::PruneTrainer faulty(fault_net, data, fault_cfg);
  const core::TrainResult r_fault = faulty.run();

  EXPECT_EQ(faulty.recovery_report().faults_injected, 1);
  EXPECT_EQ(faulty.recovery_report().rollbacks, 1);
  ASSERT_EQ(r_fault.epochs.size(), r_clean.epochs.size());
  EXPECT_DOUBLE_EQ(r_fault.epochs.back().train_loss,
                   r_clean.epochs.back().train_loss);
  EXPECT_EQ(r_fault.final_channels, r_clean.final_channels);
  expect_params_bitwise(clean_net, fault_net);
  fs::remove_all(clean_dir);
  fs::remove_all(fault_dir);
}

TEST_P(StrategyConformanceTest, ThreadsBitwise) {
  const std::string name = GetParam();
  auto data = data::SyntheticImageDataset(conformance_data());

  core::TrainConfig cfg1 = conformance_cfg(name);
  cfg1.num_threads = 1;
  graph::Network net1 = conformance_net();
  core::PruneTrainer t1(net1, data, cfg1);
  const core::TrainResult r1 = t1.run();

  core::TrainConfig cfg4 = conformance_cfg(name);
  cfg4.num_threads = 4;
  graph::Network net4 = conformance_net();
  core::PruneTrainer t4(net4, data, cfg4);
  const core::TrainResult r4 = t4.run();

  ASSERT_EQ(r1.epochs.size(), r4.epochs.size());
  for (std::size_t e = 0; e < r1.epochs.size(); ++e) {
    EXPECT_DOUBLE_EQ(r1.epochs[e].train_loss, r4.epochs[e].train_loss) << e;
    EXPECT_DOUBLE_EQ(r1.epochs[e].lasso_loss, r4.epochs[e].lasso_loss) << e;
    EXPECT_EQ(r1.epochs[e].channels_alive, r4.epochs[e].channels_alive) << e;
  }
  EXPECT_DOUBLE_EQ(r1.final_test_acc, r4.final_test_acc);
  expect_params_bitwise(net1, net4);
}

TEST_P(StrategyConformanceTest, RespectsPruneMinChannelsFloor) {
  const std::string name = GetParam();
  auto data = data::SyntheticImageDataset(conformance_data());

  // A pathological zeroing threshold would prune every channel; the floor
  // guard must keep at least prune_min_channels per conv through both the
  // strategy's own masking and the reconfiguration surgery.
  core::TrainConfig cfg = conformance_cfg(name);
  cfg.threshold = 100.f;
  cfg.prune_min_channels = 2;
  cfg.health_checks = false;  // an all-dead prune proposal is the point
  graph::Network net = conformance_net();
  core::PruneTrainer trainer(net, data, cfg);
  (void)trainer.run();

  for (int id : net.nodes_of_type<nn::Conv2d>()) {
    if (!net.is_live(id)) continue;
    EXPECT_GE(net.layer_as<nn::Conv2d>(id).out_channels(), 2)
        << "conv node " << id;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, StrategyConformanceTest,
    ::testing::ValuesIn(StrategyRegistry::global().names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

}  // namespace
}  // namespace pt::prune
