// Training-guardian tests (ISSUE 2): fault-spec parsing and the injection
// matrix (every gradient/checkpoint fault mode), numerical-health
// monitoring, recovery-policy bookkeeping, and end-to-end rollback: an
// injected NaN-gradient fault mid-run rolls back to the last good
// checkpoint and the retried run reproduces the uninjected run exactly;
// corrupted checkpoints are skipped by the rollback search; an exhausted
// budget aborts with a diagnostic checkpoint.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cmath>
#include <cstring>
#include <filesystem>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "ckpt/checkpoint.h"
#include "core/trainer.h"
#include "models/builders.h"
#include "nn/conv2d.h"
#include "robust/fault.h"
#include "robust/health.h"
#include "robust/recovery.h"

namespace pt {
namespace {

namespace fs = std::filesystem;

/// Fresh per-test scratch directory (pid-suffixed so the plain and .asan
/// binaries never collide under a concurrent ctest run).
fs::path scratch_dir(const std::string& tag) {
  const fs::path p = fs::temp_directory_path() /
                     ("pt_robust_" + tag + "_" + std::to_string(::getpid()));
  fs::remove_all(p);
  fs::create_directories(p);
  return p;
}

data::SyntheticSpec pruning_data() {
  data::SyntheticSpec spec;
  spec.name = "tiny";
  spec.classes = 8;
  spec.channels = 3;
  spec.height = 8;
  spec.width = 8;
  spec.train_samples = 256;
  spec.test_samples = 128;
  spec.noise = 0.8f;
  spec.max_shift = 2;
  spec.seed = 5;
  return spec;
}

models::ModelConfig pruning_model() {
  models::ModelConfig cfg;
  cfg.image_h = 8;
  cfg.image_w = 8;
  cfg.classes = 8;
  cfg.width_mult = 0.5f;
  cfg.seed = 21;
  return cfg;
}

/// A short PruneTrain run that actually reconfigures, with recovery armed:
/// per-epoch checkpoints and a rollback budget of 2.
core::TrainConfig guardian_cfg(const std::string& dir) {
  core::TrainConfig cfg;
  cfg.policy = core::PrunePolicy::kPruneTrain;
  cfg.epochs = 6;
  cfg.batch_size = 64;
  cfg.base_lr = 0.1f;
  cfg.weight_decay = 1e-4f;
  cfg.lr_milestones = {3, 5};
  cfg.lasso_ratio = 0.3f;
  cfg.lasso_boost = 2000.f;  // proxy time compression; prunes by epoch 2
  cfg.reconfig_interval = 2;
  cfg.eval_interval = 2;
  cfg.checkpoint_dir = dir;
  cfg.max_rollbacks = 2;
  return cfg;
}

graph::Network small_net(std::uint64_t seed = 21) {
  models::ModelConfig mc = pruning_model();
  mc.seed = seed;
  return models::build_resnet_basic(8, mc);
}

// ---------------------------------------------------------------------------
// Fault-spec grammar.

TEST(FaultSpec, ParsesMultiClauseSpecs) {
  const auto specs = robust::parse_fault_specs(
      "nan-grad:epoch=3,step=1;drop-replica:replica=2,count=0;"
      "delay-replica:delay=2.5;scale-grad:scale=100;truncate-ckpt");
  ASSERT_EQ(specs.size(), 5u);
  EXPECT_EQ(specs[0].kind, robust::FaultSpec::Kind::kNanGrad);
  EXPECT_EQ(specs[0].epoch, 3);
  EXPECT_EQ(specs[0].step, 1);
  EXPECT_EQ(specs[0].count, 1);  // default: fire once
  EXPECT_EQ(specs[1].kind, robust::FaultSpec::Kind::kDropReplica);
  EXPECT_EQ(specs[1].replica, 2);
  EXPECT_EQ(specs[1].count, 0);  // unlimited
  EXPECT_EQ(specs[2].kind, robust::FaultSpec::Kind::kDelayReplica);
  EXPECT_DOUBLE_EQ(specs[2].delay_seconds, 2.5);
  EXPECT_DOUBLE_EQ(specs[3].scale, 100.0);
  EXPECT_EQ(specs[4].kind, robust::FaultSpec::Kind::kTruncateCkpt);
  EXPECT_TRUE(robust::parse_fault_specs("").empty());
}

TEST(FaultSpec, RejectsMalformedSpecs) {
  EXPECT_THROW(robust::parse_fault_specs("meteor-strike"),
               std::invalid_argument);
  EXPECT_THROW(robust::parse_fault_specs("nan-grad:when=now"),
               std::invalid_argument);
  EXPECT_THROW(robust::parse_fault_specs("nan-grad:epoch"),
               std::invalid_argument);
  EXPECT_THROW(robust::parse_fault_specs("nan-grad:epoch=soon"),
               std::invalid_argument);
  EXPECT_THROW(robust::parse_fault_specs("nan-grad:count=-1"),
               std::invalid_argument);
  EXPECT_THROW(robust::parse_fault_specs("nan-grad;;drop-replica"),
               std::invalid_argument);
}

TEST(FaultSpec, ParsesElasticMembershipKinds) {
  const auto specs = robust::parse_fault_specs(
      "kill-replica:replica=2,step=50;flaky-replica:prob=0.25,count=0;"
      "rejoin-replica:replica=2,step=80");
  ASSERT_EQ(specs.size(), 3u);
  EXPECT_EQ(specs[0].kind, robust::FaultSpec::Kind::kKillReplica);
  EXPECT_EQ(specs[0].replica, 2);
  EXPECT_EQ(specs[0].step, 50);
  EXPECT_EQ(specs[1].kind, robust::FaultSpec::Kind::kFlakyReplica);
  EXPECT_DOUBLE_EQ(specs[1].prob, 0.25);
  EXPECT_EQ(specs[1].count, 0);
  EXPECT_EQ(specs[2].kind, robust::FaultSpec::Kind::kRejoinReplica);

  // prob is a probability, and only meaningful as one.
  EXPECT_THROW(robust::parse_fault_specs("flaky-replica:prob=1.5"),
               std::invalid_argument);
  EXPECT_THROW(robust::parse_fault_specs("flaky-replica:prob=-0.1"),
               std::invalid_argument);
}

TEST(FaultSpec, ParsesServingResilienceKinds) {
  const auto specs = robust::parse_fault_specs(
      "poison-ckpt:epoch=2;poison-ckpt:epoch=3,scale=100;"
      "slow-model:epoch=2,scale=16,count=0;flaky-output:epoch=3,count=2");
  ASSERT_EQ(specs.size(), 4u);
  EXPECT_EQ(specs[0].kind, robust::FaultSpec::Kind::kPoisonCkpt);
  EXPECT_EQ(specs[0].epoch, 2);
  EXPECT_FALSE(specs[0].scale_set);  // NaN mode
  EXPECT_EQ(specs[1].kind, robust::FaultSpec::Kind::kPoisonCkpt);
  EXPECT_TRUE(specs[1].scale_set);   // finite-garbage mode
  EXPECT_DOUBLE_EQ(specs[1].scale, 100.0);
  EXPECT_EQ(specs[2].kind, robust::FaultSpec::Kind::kSlowModel);
  EXPECT_DOUBLE_EQ(specs[2].scale, 16.0);
  EXPECT_EQ(specs[2].count, 0);
  EXPECT_EQ(specs[3].kind, robust::FaultSpec::Kind::kFlakyOutput);
  EXPECT_EQ(specs[3].epoch, 3);
  EXPECT_EQ(specs[3].count, 2);

  // slow-model's scale is an inflation factor; shrinking is not a fault.
  EXPECT_THROW(robust::parse_fault_specs("slow-model:scale=0.5"),
               std::invalid_argument);
}

TEST(FaultSpec, KillAndFlakyQueriesAreDeterministic) {
  // Kill fires exactly at its (replica, step) coordinate.
  auto kill = robust::FaultInjector::from_string(
      "kill-replica:replica=1,step=3", 11);
  EXPECT_FALSE(kill.kill_replica(1, 2));
  EXPECT_FALSE(kill.kill_replica(0, 3));
  EXPECT_TRUE(kill.kill_replica(1, 3));
  EXPECT_EQ(kill.total_fires(), 1);

  // Flaky draws the same Bernoulli stream for the same (spec, seed) and
  // query sequence — two injectors agree query for query.
  auto a = robust::FaultInjector::from_string("flaky-replica:prob=0.5,count=0",
                                              21);
  auto b = robust::FaultInjector::from_string("flaky-replica:prob=0.5,count=0",
                                              21);
  int deaths = 0;
  for (std::int64_t step = 0; step < 64; ++step) {
    for (int r = 0; r < 4; ++r) {
      const bool da = a.flaky_replica(r, step);
      ASSERT_EQ(da, b.flaky_replica(r, step));
      if (da) ++deaths;
    }
  }
  EXPECT_GT(deaths, 0);  // prob=0.5 over 256 draws cannot stay silent

  // Rejoin mirrors kill: exact coordinate, once.
  auto rejoin = robust::FaultInjector::from_string(
      "rejoin-replica:replica=1,step=9", 11);
  EXPECT_FALSE(rejoin.rejoin_replica(1, 8));
  EXPECT_TRUE(rejoin.rejoin_replica(1, 9));
}

TEST(FaultSpec, HelpTextDocumentsEveryKindAndKey) {
  const std::string help = robust::fault_spec_help();
  for (const char* kind :
       {"nan-grad", "bitflip-grad", "scale-grad", "drop-replica",
        "delay-replica", "kill-replica", "flaky-replica", "rejoin-replica",
        "truncate-ckpt", "corrupt-ckpt", "sdc-param", "sdc-momentum",
        "torn-ckpt"}) {
    EXPECT_NE(help.find(kind), std::string::npos) << kind;
  }
  for (const char* key : {"epoch", "step", "replica", "count", "scale",
                          "delay", "prob"}) {
    EXPECT_NE(help.find(key), std::string::npos) << key;
  }
}

// ---------------------------------------------------------------------------
// FaultInjector matrix: every gradient mode does what it advertises, and
// injection is deterministic in (spec, seed).

std::int64_t count_nonfinite_grads(graph::Network& net) {
  std::int64_t bad = 0;
  for (nn::Param* p : net.params()) {
    for (std::int64_t i = 0; i < p->grad.numel(); ++i) {
      if (!std::isfinite(p->grad.data()[i])) ++bad;
    }
  }
  return bad;
}

TEST(FaultInjector, NanGradPoisonsExactlyOneElement) {
  graph::Network net = small_net();
  net.zero_grad();
  auto injector = robust::FaultInjector::from_string("nan-grad:epoch=2", 9);
  EXPECT_TRUE(injector.armed());
  EXPECT_FALSE(injector.corrupt_gradients(net, 1, 0));  // wrong epoch
  EXPECT_EQ(count_nonfinite_grads(net), 0);
  EXPECT_TRUE(injector.corrupt_gradients(net, 2, 0));
  EXPECT_EQ(count_nonfinite_grads(net), 1);
  EXPECT_FALSE(injector.corrupt_gradients(net, 2, 1));  // count=1 spent
  EXPECT_EQ(injector.total_fires(), 1);
}

TEST(FaultInjector, BitflipChangesExactlyOneElement) {
  graph::Network a = small_net();
  graph::Network b = small_net();
  a.zero_grad();
  b.zero_grad();
  auto injector = robust::FaultInjector::from_string("bitflip-grad", 11);
  EXPECT_TRUE(injector.corrupt_gradients(a, 0, 0));
  auto pa = a.params();
  auto pb = b.params();
  std::int64_t diffs = 0;
  for (std::size_t i = 0; i < pa.size(); ++i) {
    for (std::int64_t q = 0; q < pa[i]->grad.numel(); ++q) {
      std::uint32_t xa, xb;
      std::memcpy(&xa, pa[i]->grad.data() + q, 4);
      std::memcpy(&xb, pb[i]->grad.data() + q, 4);
      if (xa != xb) ++diffs;
    }
  }
  EXPECT_EQ(diffs, 1);
}

TEST(FaultInjector, ScaleGradMultipliesEveryGradient) {
  graph::Network net = small_net();
  for (nn::Param* p : net.params()) p->grad.fill(2.f);
  auto injector = robust::FaultInjector::from_string("scale-grad:scale=10", 3);
  EXPECT_TRUE(injector.corrupt_gradients(net, 0, 0));
  for (nn::Param* p : net.params()) {
    for (std::int64_t i = 0; i < p->grad.numel(); ++i) {
      ASSERT_FLOAT_EQ(p->grad.data()[i], 20.f);
    }
  }
}

TEST(FaultInjector, DeterministicGivenSpecAndSeed) {
  graph::Network a = small_net();
  graph::Network b = small_net();
  a.zero_grad();
  b.zero_grad();
  auto ia = robust::FaultInjector::from_string("bitflip-grad:count=0", 77);
  auto ib = robust::FaultInjector::from_string("bitflip-grad:count=0", 77);
  for (int step = 0; step < 4; ++step) {
    ia.corrupt_gradients(a, 0, step);
    ib.corrupt_gradients(b, 0, step);
  }
  auto pa = a.params();
  auto pb = b.params();
  for (std::size_t i = 0; i < pa.size(); ++i) {
    for (std::int64_t q = 0; q < pa[i]->grad.numel(); ++q) {
      std::uint32_t xa, xb;
      std::memcpy(&xa, pa[i]->grad.data() + q, 4);
      std::memcpy(&xb, pb[i]->grad.data() + q, 4);
      ASSERT_EQ(xa, xb);
    }
  }
}

TEST(FaultInjector, DisarmedInjectorIsANoOp) {
  robust::FaultInjector injector;
  EXPECT_FALSE(injector.armed());
  graph::Network net = small_net();
  EXPECT_FALSE(injector.corrupt_gradients(net, 0, 0));
  EXPECT_FALSE(injector.drop_replica(0, 0));
  EXPECT_DOUBLE_EQ(injector.replica_delay(0, 0), 0.0);
  EXPECT_EQ(injector.total_fires(), 0);
}

TEST(FaultInjector, CheckpointFaultsBreakTheFileLoad) {
  const fs::path dir = scratch_dir("ckptfault");
  graph::Network net = small_net();
  for (const std::string mode : {"truncate-ckpt", "corrupt-ckpt"}) {
    const std::string path = (dir / (mode + ".bin")).string();
    ckpt::Checkpoint::capture(net).save(path);
    ASSERT_NO_THROW(ckpt::Checkpoint::load(path));
    auto injector = robust::FaultInjector::from_string(mode, 13);
    EXPECT_TRUE(injector.corrupt_checkpoint_files({path}, 0));
    EXPECT_THROW(ckpt::Checkpoint::load(path), std::exception);
  }
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// HealthMonitor.

TEST(HealthMonitor, CleanEpochRaisesNothing) {
  robust::HealthMonitor mon;
  graph::Network net = small_net();
  EXPECT_TRUE(mon.check_epoch(0, 1.5, net).empty());
  EXPECT_TRUE(mon.log().empty());
}

TEST(HealthMonitor, NonFiniteLossIsFatal) {
  robust::HealthMonitor mon;
  graph::Network net = small_net();
  const auto events =
      mon.check_epoch(3, std::numeric_limits<double>::quiet_NaN(), net);
  ASSERT_FALSE(events.empty());
  const robust::HealthEvent* fatal = robust::HealthMonitor::first_fatal(events);
  ASSERT_NE(fatal, nullptr);
  EXPECT_EQ(fatal->type, robust::EventType::kNonFiniteLoss);
  EXPECT_EQ(fatal->epoch, 3);
}

TEST(HealthMonitor, LossSpikeArmsAfterWarmup) {
  robust::HealthConfig cfg;
  cfg.loss_spike_factor = 10.0;
  cfg.spike_warmup = 3;
  robust::HealthMonitor mon(cfg);
  graph::Network net = small_net();
  // A huge "loss" during warmup is volatility, not divergence.
  EXPECT_TRUE(mon.check_epoch(0, 100.0, net).empty());
  EXPECT_TRUE(mon.check_epoch(1, 2.0, net).empty());
  EXPECT_TRUE(mon.check_epoch(2, 2.0, net).empty());
  EXPECT_TRUE(mon.check_epoch(3, 2.1, net).empty());
  // Median of the window is ~2: 50 trips the 10x detector.
  const auto events = mon.check_epoch(4, 50.0, net);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].type, robust::EventType::kLossSpike);
  EXPECT_EQ(events[0].severity, robust::Severity::kFatal);
  // A spike is not recorded as healthy; the window recovers afterwards.
  EXPECT_TRUE(mon.check_epoch(5, 2.0, net).empty());
  mon.reset_window();
  EXPECT_TRUE(mon.check_epoch(6, 100.0, net).empty());  // warmup re-runs
}

TEST(HealthMonitor, DetectsNonFiniteTensors) {
  graph::Network net = small_net();
  {  // gradient
    robust::HealthMonitor mon;
    net.zero_grad();
    net.params()[0]->grad.data()[0] = std::numeric_limits<float>::infinity();
    const auto events = mon.check_epoch(0, 1.0, net);
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].type, robust::EventType::kNonFiniteGradient);
    EXPECT_EQ(events[0].severity, robust::Severity::kFatal);
  }
  net.zero_grad();
  {  // parameter
    robust::HealthMonitor mon;
    float* w = net.params()[0]->value.data();
    const float saved = w[0];
    w[0] = std::numeric_limits<float>::quiet_NaN();
    const auto events = mon.check_epoch(0, 1.0, net);
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].type, robust::EventType::kNonFiniteParam);
    w[0] = saved;
  }
  {  // disabled scan
    robust::HealthConfig cfg;
    cfg.check_gradients = false;
    cfg.check_bn_stats = false;
    robust::HealthMonitor mon(cfg);
    net.params()[0]->grad.data()[0] = std::numeric_limits<float>::infinity();
    EXPECT_TRUE(mon.check_epoch(0, 1.0, net).empty());
  }
}

TEST(HealthMonitor, PruningCollapseIsAWarning) {
  graph::Network net = small_net();
  // Zero every conv weight: all channels fall below threshold everywhere.
  for (int id : net.nodes_of_type<nn::Conv2d>()) {
    net.layer_as<nn::Conv2d>(id).weight().value.fill(0.f);
  }
  robust::HealthMonitor mon;
  const auto events = mon.check_prune(2, net, 1e-4f);
  ASSERT_FALSE(events.empty());
  for (const auto& ev : events) {
    EXPECT_EQ(ev.type, robust::EventType::kPruningCollapse);
    EXPECT_EQ(ev.severity, robust::Severity::kWarning);
  }
  EXPECT_EQ(robust::HealthMonitor::first_fatal(events), nullptr);
}

TEST(HealthConfig, ValidatesFields) {
  robust::HealthConfig cfg;
  cfg.loss_spike_factor = 1.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.loss_window = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.spike_warmup = -1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  EXPECT_NO_THROW(robust::HealthConfig{}.validate());
}

// ---------------------------------------------------------------------------
// RecoveryPolicy bookkeeping.

TEST(RecoveryPolicy, CutsLrAndBacksOffExponentially) {
  robust::RecoveryConfig cfg;
  cfg.max_rollbacks = 3;
  cfg.lr_cut = 0.5f;
  cfg.backoff_base = 4.0;
  cfg.backoff_cap = 5.0;
  robust::RecoveryPolicy policy(cfg);
  robust::HealthEvent ev;

  auto d1 = policy.on_fatal(ev);
  EXPECT_EQ(d1.action, robust::RecoveryPolicy::Decision::Action::kRollback);
  EXPECT_FLOAT_EQ(d1.lr_scale, 0.5f);
  EXPECT_DOUBLE_EQ(d1.backoff_seconds, 1.0);  // 4^0
  EXPECT_EQ(d1.attempt, 1);

  auto d2 = policy.on_fatal(ev);
  EXPECT_FLOAT_EQ(d2.lr_scale, 0.25f);
  EXPECT_DOUBLE_EQ(d2.backoff_seconds, 4.0);  // 4^1

  auto d3 = policy.on_fatal(ev);
  EXPECT_FLOAT_EQ(d3.lr_scale, 0.125f);
  EXPECT_DOUBLE_EQ(d3.backoff_seconds, 5.0);  // 4^2 capped at 5

  auto d4 = policy.on_fatal(ev);
  EXPECT_EQ(d4.action, robust::RecoveryPolicy::Decision::Action::kAbort);
  EXPECT_EQ(policy.rollbacks(), 3);
}

TEST(RecoveryConfig, ValidatesFields) {
  robust::RecoveryConfig cfg;
  cfg.lr_cut = 0.f;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.lr_cut = 1.5f;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.backoff_base = 0.5;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.max_rollbacks = -1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(RecoveryReport, SerializationRoundTrips) {
  robust::RecoveryReport report;
  report.rollbacks = 2;
  report.faults_injected = 5;
  report.backoff_seconds = 3.5;
  report.aborted = true;
  report.last_checkpoint = "/tmp/ckpt-epoch-4.bin";
  robust::HealthEvent ev;
  ev.type = robust::EventType::kLossSpike;
  ev.severity = robust::Severity::kFatal;
  ev.epoch = 4;
  ev.value = 123.0;
  ev.detail = "loss 123 > 10x median 2";
  report.events.push_back(ev);

  const auto round = robust::deserialize_report(robust::serialize_report(report));
  EXPECT_EQ(round.rollbacks, 2);
  EXPECT_EQ(round.faults_injected, 5);
  EXPECT_DOUBLE_EQ(round.backoff_seconds, 3.5);
  EXPECT_TRUE(round.aborted);
  EXPECT_EQ(round.last_checkpoint, report.last_checkpoint);
  ASSERT_EQ(round.events.size(), 1u);
  EXPECT_EQ(round.events[0].type, robust::EventType::kLossSpike);
  EXPECT_EQ(round.events[0].epoch, 4);
  EXPECT_EQ(round.events[0].detail, ev.detail);
}

TEST(FindLastGoodCheckpoint, SkipsCorruptedFilesAndFallsBack) {
  const fs::path dir = scratch_dir("lastgood");
  EXPECT_EQ(robust::find_last_good_checkpoint(dir.string()), "");
  EXPECT_EQ(robust::find_last_good_checkpoint((dir / "absent").string()), "");

  graph::Network net = small_net();
  ckpt::Checkpoint ck = ckpt::Checkpoint::capture(net);
  ck.save((dir / "ckpt-epoch-2.bin").string());
  ck.save((dir / "ckpt-epoch-4.bin").string());
  ck.save((dir / "ckpt-latest.bin").string());
  EXPECT_EQ(robust::find_last_good_checkpoint(dir.string()),
            (dir / "ckpt-latest.bin").string());

  // Corrupt latest: fall back to the highest numbered checkpoint.
  auto injector = robust::FaultInjector::from_string("corrupt-ckpt:count=0", 1);
  injector.corrupt_checkpoint_files({(dir / "ckpt-latest.bin").string()}, 0);
  EXPECT_EQ(robust::find_last_good_checkpoint(dir.string()),
            (dir / "ckpt-epoch-4.bin").string());

  // Corrupt that too: fall back further.
  injector.corrupt_checkpoint_files({(dir / "ckpt-epoch-4.bin").string()}, 0);
  EXPECT_EQ(robust::find_last_good_checkpoint(dir.string()),
            (dir / "ckpt-epoch-2.bin").string());

  injector.corrupt_checkpoint_files({(dir / "ckpt-epoch-2.bin").string()}, 0);
  EXPECT_EQ(robust::find_last_good_checkpoint(dir.string()), "");
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// TrainConfig validation of the guardian fields.

TEST(GuardianConfig, ValidatesRobustnessFields) {
  core::TrainConfig cfg;
  cfg.max_rollbacks = -1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.max_rollbacks = 2;  // rollback without a checkpoint_dir
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.checkpoint_dir = "/tmp/somewhere";
  EXPECT_NO_THROW(cfg.validate());
  cfg.rollback_lr_cut = 0.f;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.rollback_lr_cut = 1.5f;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.rollback_backoff = 0.9;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.rollback_backoff_cap = -1.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.prune_min_channels = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.fault_spec = "meteor-strike";
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.fault_spec = "nan-grad:epoch=3";
  EXPECT_NO_THROW(cfg.validate());
  cfg = {};
  cfg.health.loss_window = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// End-to-end guardian runs (the ISSUE 2 acceptance scenario).

TEST(Guardian, NanFaultRollsBackAndReproducesCleanRun) {
  auto data = data::SyntheticImageDataset(pruning_data());
  const fs::path clean_dir = scratch_dir("clean");
  const fs::path fault_dir = scratch_dir("fault");

  graph::Network clean_net = small_net();
  core::TrainConfig clean_cfg = guardian_cfg(clean_dir.string());
  core::PruneTrainer clean(clean_net, data, clean_cfg);
  const auto clean_result = clean.run();
  EXPECT_EQ(clean.recovery_report().rollbacks, 0);
  EXPECT_EQ(clean.recovery_report().faults_injected, 0);

  // Same run with a NaN gradient injected mid-epoch-3. The guardian must
  // detect it, roll back to the end-of-epoch checkpoint, and — with
  // lr_cut=1 and the single-shot fault spent — replay the remaining epochs
  // bitwise-identically to the uninjected run.
  graph::Network fault_net = small_net();
  core::TrainConfig fault_cfg = guardian_cfg(fault_dir.string());
  fault_cfg.fault_spec = "nan-grad:epoch=3,step=1";
  fault_cfg.rollback_lr_cut = 1.0f;
  core::PruneTrainer faulty(fault_net, data, fault_cfg);
  const auto fault_result = faulty.run();

  const auto& report = faulty.recovery_report();
  EXPECT_EQ(report.faults_injected, 1);
  EXPECT_EQ(report.rollbacks, 1);
  EXPECT_FALSE(report.aborted);
  ASSERT_FALSE(report.events.empty());
  EXPECT_EQ(robust::HealthMonitor::first_fatal(report.events)->epoch, 3);

  EXPECT_TRUE(std::isfinite(fault_result.epochs.back().train_loss));
  EXPECT_DOUBLE_EQ(fault_result.epochs.back().train_loss,
                   clean_result.epochs.back().train_loss);
  EXPECT_DOUBLE_EQ(fault_result.final_test_acc, clean_result.final_test_acc);
  EXPECT_EQ(fault_result.final_channels, clean_result.final_channels);
  EXPECT_EQ(fault_result.epochs.size(), clean_result.epochs.size());
  EXPECT_EQ(fault_net.num_params(), clean_net.num_params());
  auto pf = fault_net.params();
  auto pc = clean_net.params();
  ASSERT_EQ(pf.size(), pc.size());
  for (std::size_t i = 0; i < pf.size(); ++i) {
    for (std::int64_t q = 0; q < pf[i]->value.numel(); ++q) {
      ASSERT_EQ(pf[i]->value.data()[q], pc[i]->value.data()[q]);
    }
  }
  fs::remove_all(clean_dir);
  fs::remove_all(fault_dir);
}

TEST(Guardian, RollbackSkipsACorruptedCheckpoint) {
  // The checkpoint written after epoch 4 (numbered + latest) is corrupted
  // on disk; a NaN fault then strikes epoch 4's training... the rollback
  // search must skip the damaged files and land on ckpt-epoch-3.bin.
  auto data = data::SyntheticImageDataset(pruning_data());
  const fs::path dir = scratch_dir("fallback");
  graph::Network net = small_net();
  core::TrainConfig cfg = guardian_cfg(dir.string());
  cfg.fault_spec = "corrupt-ckpt:epoch=4;nan-grad:epoch=4,step=2";
  core::PruneTrainer trainer(net, data, cfg);
  const auto result = trainer.run();

  const auto& report = trainer.recovery_report();
  EXPECT_EQ(report.faults_injected, 2);
  EXPECT_EQ(report.rollbacks, 1);
  EXPECT_EQ(report.last_checkpoint, (dir / "ckpt-epoch-3.bin").string());
  EXPECT_TRUE(std::isfinite(result.epochs.back().train_loss));
  EXPECT_TRUE(std::isfinite(result.final_test_acc));
  fs::remove_all(dir);
}

TEST(Guardian, ExhaustedBudgetAbortsWithDiagnosticCheckpoint) {
  auto data = data::SyntheticImageDataset(pruning_data());
  const fs::path dir = scratch_dir("abort");
  graph::Network net = small_net();
  core::TrainConfig cfg = guardian_cfg(dir.string());
  cfg.epochs = 3;
  cfg.max_rollbacks = 1;
  cfg.fault_spec = "nan-grad:count=0";  // refaults on every retry
  core::PruneTrainer trainer(net, data, cfg);
  try {
    trainer.run();
    FAIL() << "expected robust::TrainingAborted";
  } catch (const robust::TrainingAborted& e) {
    EXPECT_TRUE(e.report().aborted);
    EXPECT_EQ(e.report().rollbacks, 1);
    EXPECT_GE(e.report().faults_injected, 2);
  }

  // The diagnostic checkpoint must exist, load, and carry the report.
  ckpt::Checkpoint ck =
      ckpt::Checkpoint::load((dir / "ckpt-diagnostic.bin").string());
  const std::vector<std::uint8_t>* section = ck.section("guardian");
  ASSERT_NE(section, nullptr);
  const auto report = robust::deserialize_report(*section);
  EXPECT_TRUE(report.aborted);
  EXPECT_EQ(report.rollbacks, 1);
  ASSERT_FALSE(report.events.empty());
  fs::remove_all(dir);
}

TEST(Guardian, RecoveryDisabledObservesButDoesNotInterrupt) {
  // Historical behavior when max_rollbacks == 0: the fatal event is logged
  // and recorded, the run is left to its fate.
  auto data = data::SyntheticImageDataset(pruning_data());
  graph::Network net = small_net();
  core::TrainConfig cfg;
  cfg.policy = core::PrunePolicy::kPruneTrain;
  cfg.epochs = 3;
  cfg.batch_size = 64;
  cfg.base_lr = 0.1f;
  cfg.lasso_ratio = 0.3f;
  cfg.fault_spec = "nan-grad:epoch=1,step=0";
  core::PruneTrainer trainer(net, data, cfg);
  const auto result = trainer.run();
  EXPECT_EQ(result.epochs.size(), 3u);
  EXPECT_EQ(trainer.recovery_report().rollbacks, 0);
  EXPECT_EQ(trainer.recovery_report().faults_injected, 1);
  // The poison is detected as a fatal event every epoch from the injection
  // on (the loss itself may stay finite — ReLU squashes NaN activations to
  // zero — which is exactly why the state scan exists).
  const robust::HealthEvent* fatal =
      robust::HealthMonitor::first_fatal(trainer.recovery_report().events);
  ASSERT_NE(fatal, nullptr);
  EXPECT_EQ(fatal->epoch, 1);
}

TEST(Guardian, MinChannelFloorKeepsPrunedNetworkTrainable) {
  // An absurd threshold would historically prune entire variables away (or
  // throw); the floor guard keeps >= min channels per variable and the
  // model remains trainable end to end.
  auto data = data::SyntheticImageDataset(pruning_data());
  graph::Network net = small_net();
  core::TrainConfig cfg;
  cfg.policy = core::PrunePolicy::kPruneTrain;
  cfg.epochs = 2;
  cfg.batch_size = 64;
  cfg.base_lr = 0.1f;
  cfg.lasso_ratio = 0.3f;
  cfg.reconfig_interval = 1;
  cfg.threshold = 1e9f;  // every channel is "prunable"
  cfg.prune_min_channels = 2;
  core::PruneTrainer trainer(net, data, cfg);
  const auto result = trainer.run();
  EXPECT_TRUE(std::isfinite(result.epochs.back().train_loss));
  EXPECT_TRUE(std::isfinite(result.final_test_acc));
  for (int id : net.nodes_of_type<nn::Conv2d>()) {
    EXPECT_GE(net.layer_as<nn::Conv2d>(id).out_channels(), 1);
  }
  EXPECT_GT(net.num_params(), 0);
}

}  // namespace
}  // namespace pt
