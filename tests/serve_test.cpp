// Serving runtime tests (ISSUE 8): mailbox admission control and
// padding-free batching, deterministic round-robin scheduling, lease
// publish/retire, the checkpoint-watching registry (corrupt generations
// skipped), worker-count bitwise invariance, overload shedding without
// drops, and the end-to-end zero-drop hot swap whose post-swap responses
// are bitwise identical to a cold serve of the new generation.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <vector>

#include "ckpt/checkpoint.h"
#include "cost/flops.h"
#include "models/builders.h"
#include "prune/materialize.h"
#include "robust/fault.h"
#include "serve/breaker.h"
#include "serve/canary.h"
#include "serve/mailbox.h"
#include "serve/registry.h"
#include "serve/scheduler.h"
#include "serve/server.h"
#include "util/fileio.h"

namespace pt {
namespace {

namespace fs = std::filesystem;

/// Fresh per-test scratch directory; pid-suffixed so the plain and
/// sanitized binaries never collide under a concurrent ctest.
fs::path scratch_dir(const std::string& tag) {
  const fs::path p = fs::temp_directory_path() /
                     ("pt_serve_" + tag + "_" + std::to_string(::getpid()));
  fs::remove_all(p);
  fs::create_directories(p);
  return p;
}

models::ModelConfig tiny_model(float width, std::uint64_t seed) {
  models::ModelConfig cfg;
  cfg.image_h = 8;
  cfg.image_w = 8;
  cfg.classes = 8;
  cfg.width_mult = width;
  cfg.seed = seed;
  return cfg;
}

const Shape kInput{3, 8, 8};

graph::Network tiny_net(float width = 0.5f, std::uint64_t seed = 21) {
  return models::build_resnet_basic(8, tiny_model(width, seed));
}

void write_generation(const fs::path& dir, std::int64_t epoch,
                      graph::Network& net) {
  ckpt::Checkpoint::capture(net).save(
      (dir / ("ckpt-epoch-" + std::to_string(epoch) + ".bin")).string());
}

serve::Request make_request(std::int64_t id, const std::string& model,
                            serve::Tick arrival, serve::Tick deadline,
                            Shape shape = kInput) {
  serve::Request r;
  r.id = id;
  r.model = model;
  r.arrival = arrival;
  r.deadline = deadline;
  r.input = Tensor::zeros(std::move(shape));
  return r;
}

// --- Mailbox -------------------------------------------------------------

TEST(Mailbox, AdmissionShedsWithStructuredReasons) {
  serve::MailboxPolicy policy;
  policy.max_queue = 2;
  policy.max_batch = 4;
  policy.batch_service_ticks = 10;
  serve::Mailbox m("m", policy);

  // Empty queue: one batch of modeled service -> wait estimate 10 ticks.
  EXPECT_EQ(m.modeled_wait(), 10);
  EXPECT_EQ(m.offer(make_request(0, "m", 0, 5), 0),
            serve::ShedReason::kInfeasibleDeadline);
  EXPECT_EQ(m.offer(make_request(1, "m", 0, 20), 0), serve::ShedReason::kNone);
  EXPECT_EQ(m.offer(make_request(2, "m", 1, 20), 1), serve::ShedReason::kNone);
  EXPECT_EQ(m.offer(make_request(3, "m", 2, 50), 2),
            serve::ShedReason::kQueueFull);
  EXPECT_EQ(m.size(), 2);
  EXPECT_EQ(m.admitted(), 2);
  EXPECT_EQ(m.shed_queue_full(), 1);
  EXPECT_EQ(m.shed_infeasible_count(), 1);

  // The modeled clock is monotone; a regressed arrival is a driver bug.
  EXPECT_THROW(m.offer(make_request(4, "m", 1, 50), 1), std::invalid_argument);
  // Wrong tenant is a routing bug, not a shed.
  EXPECT_THROW(m.offer(make_request(5, "x", 3, 50), 3), std::invalid_argument);
}

TEST(Mailbox, PopBatchIsDeadlineOrderedAndShapeGrouped) {
  serve::MailboxPolicy policy;
  policy.max_queue = 0;  // unbounded
  policy.max_batch = 3;
  policy.batch_service_ticks = 1;
  policy.shed_on_infeasible = false;
  serve::Mailbox m("m", policy);

  // Deadlines out of arrival order; request 2 has a different shape.
  ASSERT_EQ(m.offer(make_request(0, "m", 0, 90), 0), serve::ShedReason::kNone);
  ASSERT_EQ(m.offer(make_request(1, "m", 1, 40), 1), serve::ShedReason::kNone);
  ASSERT_EQ(m.offer(make_request(2, "m", 2, 10, Shape{3, 4, 4}), 2),
            serve::ShedReason::kNone);
  ASSERT_EQ(m.offer(make_request(3, "m", 3, 40), 3), serve::ShedReason::kNone);
  ASSERT_EQ(m.offer(make_request(4, "m", 4, 60), 4), serve::ShedReason::kNone);

  EXPECT_EQ(m.oldest_deadline(), 10);

  // Pivot is id 2 (deadline 10); only the other {3,4,4} shapes may join —
  // there are none, so it dispatches alone and everyone else keeps place.
  auto b1 = m.pop_batch();
  ASSERT_EQ(b1.size(), 1u);
  EXPECT_EQ(b1[0].id, 2);

  // Next pivot is deadline 40; arrival order breaks the 1-vs-3 tie; the
  // max_batch cap of 3 admits deadline-60 as well, leaving deadline-90.
  auto b2 = m.pop_batch();
  ASSERT_EQ(b2.size(), 3u);
  EXPECT_EQ(b2[0].id, 1);
  EXPECT_EQ(b2[1].id, 3);
  EXPECT_EQ(b2[2].id, 4);

  auto b3 = m.pop_batch();
  ASSERT_EQ(b3.size(), 1u);
  EXPECT_EQ(b3[0].id, 0);
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.popped(), 5);
}

// --- Scheduler -----------------------------------------------------------

TEST(Scheduler, DispatchesFullBatchesAndForcedDeadlines) {
  serve::MailboxPolicy policy;
  policy.max_batch = 2;
  policy.batch_service_ticks = 5;
  serve::Mailbox m("m", policy);
  serve::Scheduler sched(serve::SchedulerConfig{});

  EXPECT_FALSE(sched.due(m, 0));
  ASSERT_EQ(m.offer(make_request(0, "m", 0, 100), 0), serve::ShedReason::kNone);
  // One queued request, deadline far out: not due until 100 - 5 = 95.
  EXPECT_FALSE(sched.due(m, 94));
  EXPECT_TRUE(sched.due(m, 95));
  // A full batch dispatches immediately regardless of deadlines.
  ASSERT_EQ(m.offer(make_request(1, "m", 1, 100), 1), serve::ShedReason::kNone);
  EXPECT_TRUE(sched.due(m, 1));
}

TEST(Scheduler, RoundRobinInterleavesTenantsAndSkipsUnpublished) {
  serve::MailboxPolicy policy;
  policy.max_batch = 2;
  policy.batch_service_ticks = 1;
  serve::Mailbox m1("a", policy), m2("b", policy);
  for (std::int64_t i = 0; i < 4; ++i) {
    ASSERT_EQ(m1.offer(make_request(i, "a", i, i + 2), i),
              serve::ShedReason::kNone);
    ASSERT_EQ(m2.offer(make_request(10 + i, "b", i, i + 2), i),
              serve::ShedReason::kNone);
  }

  serve::LeaseTable leases;
  serve::Scheduler sched(serve::SchedulerConfig{});
  // No tenant has published weights yet: nothing forms, requests wait.
  EXPECT_TRUE(sched.form(10, {&m1, &m2}, leases).empty());
  EXPECT_EQ(m1.size() + m2.size(), 8);

  auto va = std::make_shared<serve::ModelVersion>();
  auto vb = std::make_shared<serve::ModelVersion>();
  leases.publish("a", va);
  leases.publish("b", vb);
  auto plans = sched.form(10, {&m1, &m2}, leases);
  ASSERT_EQ(plans.size(), 4u);
  // Rounds interleave — no tenant monopolizes a burst. The empty form()
  // above already advanced the persistent cursor by one, so "b" leads.
  EXPECT_EQ(plans[0].model, "b");
  EXPECT_EQ(plans[1].model, "a");
  EXPECT_EQ(plans[2].model, "b");
  EXPECT_EQ(plans[3].model, "a");
  for (const auto& p : plans) EXPECT_EQ(p.requests.size(), 2u);
  EXPECT_EQ(plans[0].batch_id, 0);
  EXPECT_EQ(plans[3].batch_id, 3);
}

// --- LeaseTable ----------------------------------------------------------

TEST(LeaseTable, EpochsAdvanceAndRetirementWaitsForPins) {
  serve::LeaseTable t;
  EXPECT_EQ(t.epoch("m"), -1);
  EXPECT_FALSE(t.has("m"));
  EXPECT_EQ(t.acquire("m"), nullptr);

  t.publish("m", std::make_shared<serve::ModelVersion>());
  EXPECT_EQ(t.epoch("m"), 0);
  auto pin = t.acquire("m");  // an in-flight batch pins epoch 0
  ASSERT_NE(pin, nullptr);
  EXPECT_EQ(pin->lease_epoch, 0);

  t.publish("m", std::make_shared<serve::ModelVersion>());
  EXPECT_EQ(t.epoch("m"), 1);
  EXPECT_EQ(t.acquire("m")->lease_epoch, 1);
  EXPECT_EQ(t.pending_retirement(), 1);
  EXPECT_EQ(t.sweep_retired(), 0);  // the pin still holds epoch 0 alive

  pin.reset();  // in-flight batch completes
  EXPECT_EQ(t.sweep_retired(), 1);
  EXPECT_EQ(t.pending_retirement(), 0);
  EXPECT_EQ(t.retired(), 1);
  EXPECT_EQ(t.publishes(), 2);
}

// --- Materialization (satellite 1) --------------------------------------

TEST(Materialize, UnionFormPreservesOutputsBitwise) {
  auto net = tiny_net();
  exec::ExecContext ctx(1);
  Rng rng(7);
  Tensor x = Tensor::randn({4, kInput[0], kInput[1], kInput[2]}, rng);
  const Tensor before = net.forward(ctx, x, false).clone();

  const auto stats =
      prune::materialize_inference(net, prune::InferenceForm::kChannelUnion);
  EXPECT_EQ(stats.form, prune::InferenceForm::kChannelUnion);
  EXPECT_GT(stats.conv_layers, 0);
  EXPECT_GT(stats.channels, 0);

  const Tensor after = net.forward(ctx, x, false);
  ASSERT_EQ(after.shape(), before.shape());
  EXPECT_EQ(std::memcmp(after.data(), before.data(),
                        sizeof(float) * static_cast<std::size_t>(after.numel())),
            0);
}

// --- Generation listing + registry ---------------------------------------

TEST(Registry, ListGenerationsSortsAndIgnoresForeignFiles) {
  const fs::path dir = scratch_dir("list");
  auto net = tiny_net();
  write_generation(dir, 12, net);
  write_generation(dir, 2, net);
  ckpt::Checkpoint::capture(net).save((dir / "ckpt-latest.bin").string());
  std::ofstream(dir / "ckpt-epoch-9.bin.tmp") << "partial";
  std::ofstream(dir / "notes.txt") << "hi";

  const auto gens = ckpt::list_generations(dir.string());
  ASSERT_EQ(gens.size(), 2u);
  EXPECT_EQ(gens[0].epoch, 2);
  EXPECT_EQ(gens[1].epoch, 12);
  EXPECT_TRUE(ckpt::Checkpoint::probe(gens[0].path));
  EXPECT_FALSE(ckpt::Checkpoint::probe((dir / "notes.txt").string()));
  EXPECT_TRUE(ckpt::list_generations((dir / "missing").string()).empty());
  fs::remove_all(dir);
}

TEST(Registry, PollSkipsCorruptGenerationsAndPricesSwaps) {
  const fs::path dir = scratch_dir("poll");
  auto v1 = tiny_net(0.5f, 21);
  write_generation(dir, 1, v1);
  // A torn/bit-rotted generation: newest by epoch, but must never serve.
  std::ofstream(dir / "ckpt-epoch-2.bin") << "garbage bytes, no CRC";

  serve::RegistryConfig cfg;
  cfg.flops_per_tick = cost::FlopsModel(v1, kInput).inference_flops();
  serve::ModelRegistry reg(cfg);
  reg.add_model("m", dir.string(), kInput);
  serve::LeaseTable leases;
  exec::ExecContext ctx(1);

  auto swaps = reg.poll(ctx, leases);
  ASSERT_EQ(swaps.size(), 1u);
  EXPECT_EQ(swaps[0].to_generation, 1);
  EXPECT_EQ(reg.served_generation("m"), 1);
  EXPECT_EQ(leases.epoch("m"), 0);
  // Full batch of the v1-priced model: max_batch * flops / flops_per_tick.
  EXPECT_EQ(swaps[0].service_ticks_per_batch, cfg.max_batch);

  // The scrubber's ledger shows the corrupt generation scrubbed + invalid.
  const auto* scrubber = reg.scrubber("m");
  ASSERT_NE(scrubber, nullptr);
  bool saw_corrupt = false;
  for (const auto& g : scrubber->generations()) {
    if (g.epoch == 2) {
      saw_corrupt = true;
      EXPECT_TRUE(g.scrubbed);
      EXPECT_FALSE(g.valid);
    }
  }
  EXPECT_TRUE(saw_corrupt);

  // Nothing new: no swap. A narrower (pruned) valid generation: swap, and
  // the modeled batch service time shrinks with the FLOPs.
  EXPECT_TRUE(reg.poll(ctx, leases).empty());
  auto v3 = tiny_net(0.25f, 22);
  write_generation(dir, 3, v3);
  swaps = reg.poll(ctx, leases);
  ASSERT_EQ(swaps.size(), 1u);
  EXPECT_EQ(swaps[0].from_generation, 1);
  EXPECT_EQ(swaps[0].to_generation, 3);
  EXPECT_LT(swaps[0].inference_flops, cfg.flops_per_tick);
  EXPECT_LT(swaps[0].service_ticks_per_batch, cfg.max_batch);
  EXPECT_EQ(leases.epoch("m"), 1);
  fs::remove_all(dir);
}

// --- End-to-end runtime --------------------------------------------------

serve::ServeConfig runtime_config(int workers) {
  serve::ServeConfig cfg;
  cfg.workers = workers;
  cfg.max_batch = 4;
  cfg.max_queue = 256;
  cfg.flops_per_tick = 2e6;
  return cfg;
}

std::vector<serve::Request> two_tenant_trace() {
  serve::TraceSpec a;
  a.model = "a";
  a.mean_interarrival = 4.0;
  a.end = 240;
  a.deadline = 40;
  a.input = kInput;
  a.seed = 11;
  serve::TraceSpec b = a;
  b.model = "b";
  b.mean_interarrival = 6.0;
  b.seed = 12;
  return serve::synthesize_trace({a, b});
}

TEST(ServeRuntime, WorkerAndThreadCountsAreBitwiseInvisible) {
  const auto trace = two_tenant_trace();
  auto run_at = [&](int workers, int threads) {
    exec::ExecContext ctx(threads);
    serve::ServeRuntime rt(runtime_config(workers), ctx);
    rt.publish_network("a", tiny_net(0.5f, 21), 1, kInput);
    rt.publish_network("b", tiny_net(0.5f, 33), 1, kInput);
    return rt.run(trace);
  };
  const auto base = run_at(1, 1);
  const auto wide = run_at(4, 4);

  EXPECT_EQ(base.dropped, 0);
  EXPECT_EQ(wide.dropped, 0);
  EXPECT_GT(base.batches, 0);
  ASSERT_EQ(base.responses.size(), trace.size());
  ASSERT_EQ(wide.responses.size(), trace.size());
  EXPECT_EQ(base.batches, wide.batches);
  EXPECT_EQ(base.shed, wide.shed);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const auto& r1 = base.responses[i];
    const auto& r2 = wide.responses[i];
    // Payload + scheduling identity: identical at any worker/thread count.
    ASSERT_EQ(r1.request_id, r2.request_id);
    EXPECT_EQ(r1.shed, r2.shed);
    EXPECT_EQ(r1.reason, r2.reason);
    EXPECT_EQ(r1.batch_id, r2.batch_id);
    EXPECT_EQ(r1.formed, r2.formed);
    EXPECT_EQ(r1.generation, r2.generation);
    EXPECT_EQ(r1.lease_epoch, r2.lease_epoch);
    EXPECT_EQ(r1.argmax, r2.argmax);
    if (!r1.shed) {
      ASSERT_EQ(r1.logits.shape(), r2.logits.shape());
      EXPECT_EQ(std::memcmp(r1.logits.data(), r2.logits.data(),
                            sizeof(float) *
                                static_cast<std::size_t>(r1.logits.numel())),
                0)
          << "logits diverged for request " << r1.request_id;
    }
    // Only the clock columns may move (more workers = earlier starts).
    EXPECT_LE(r2.completion, r1.completion);
  }
}

TEST(ServeRuntime, OverloadShedsButNeverDrops) {
  // Five overlapping arrival processes on one tenant: several requests can
  // land on the same tick, which is the only way to outpace formation —
  // batches form every tick regardless of worker backlog (by design), so
  // a one-per-tick stream never fills the queue.
  std::vector<serve::TraceSpec> specs(5);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    specs[i].model = "m";
    specs[i].mean_interarrival = 1.0;
    specs[i].end = 150;
    specs[i].deadline = 40;
    specs[i].input = kInput;
    specs[i].seed = 5 + i;
  }
  const auto trace = serve::synthesize_trace(specs);

  exec::ExecContext ctx(1);
  auto cfg = runtime_config(2);
  cfg.max_queue = 6;
  auto net = tiny_net();
  // Slow modeled workers: a full batch costs 16 ticks while requests land
  // about every tick, so the backlog hits the depth bound and sheds.
  cfg.flops_per_tick =
      cost::FlopsModel(net, kInput).inference_flops() / 4.0;
  serve::ServeRuntime rt(cfg, ctx);
  rt.publish_network("m", std::move(net), 1, kInput);
  const auto report = rt.run(trace);

  EXPECT_GT(report.shed, 0);
  EXPECT_EQ(report.requests, static_cast<std::int64_t>(trace.size()));
  EXPECT_EQ(report.admitted + report.shed, report.requests);
  // The zero-drop invariant: everything admitted completes, overload or not.
  EXPECT_EQ(report.dropped, 0);
  EXPECT_EQ(report.admitted, report.completed);
  ASSERT_EQ(report.responses.size(), trace.size());
  for (const auto& r : report.responses) {
    if (r.shed) {
      EXPECT_TRUE(r.reason == serve::ShedReason::kQueueFull ||
                  r.reason == serve::ShedReason::kInfeasibleDeadline);
    } else {
      EXPECT_GE(r.completion, r.arrival);
    }
  }
}

TEST(ServeRuntime, UnknownTenantIsShedStructurally) {
  exec::ExecContext ctx(1);
  serve::ServeRuntime rt(runtime_config(1), ctx);
  rt.publish_network("known", tiny_net(), 1, kInput);
  std::vector<serve::Request> trace;
  trace.push_back(make_request(0, "known", 0, 40));
  trace.push_back(make_request(1, "ghost", 1, 40));
  const auto report = rt.run(trace);
  ASSERT_EQ(report.responses.size(), 2u);
  EXPECT_FALSE(report.responses[0].shed);
  EXPECT_TRUE(report.responses[1].shed);
  EXPECT_EQ(report.responses[1].reason, serve::ShedReason::kUnknownModel);
  EXPECT_EQ(report.dropped, 0);
}

TEST(ServeRuntime, HotSwapUnderLoadDropsNothingAndMatchesColdServe) {
  const fs::path hot_dir = scratch_dir("hot");
  const fs::path cold_dir = scratch_dir("cold");
  auto gen1 = tiny_net(0.5f, 21);
  auto gen2 = tiny_net(0.25f, 22);  // the "freshly pruned" generation
  write_generation(hot_dir, 1, gen1);
  write_generation(cold_dir, 2, gen2);

  serve::TraceSpec spec;
  spec.model = "m";
  spec.mean_interarrival = 3.0;
  spec.end = 600;
  spec.deadline = 60;
  spec.input = kInput;
  spec.seed = 9;
  const auto trace = serve::synthesize_trace({spec});
  const serve::Tick swap_at = 300;

  auto cfg = runtime_config(2);
  cfg.poll_interval = 5;

  // Hot: serve generation 1, drop generation 2's file mid-trace.
  exec::ExecContext ctx(1);
  serve::ServeRuntime hot(cfg, ctx);
  hot.add_model("m", hot_dir.string(), kInput);
  hot.schedule(swap_at, [&] {
    fs::copy_file(cold_dir / "ckpt-epoch-2.bin", hot_dir / "ckpt-epoch-2.bin");
  });
  const auto hot_report = hot.run(trace);

  // The swap happened at the first poll boundary at/after the file drop,
  // with live traffic on both sides of it.
  ASSERT_EQ(hot_report.swaps.size(), 2u);  // cold start + the hot swap
  const auto& swap = hot_report.swaps[1];
  EXPECT_EQ(swap.record.from_generation, 1);
  EXPECT_EQ(swap.record.to_generation, 2);
  EXPECT_EQ(swap.record.lease_epoch, 1);
  EXPECT_GE(swap.tick, swap_at);
  EXPECT_LT(swap.tick, swap_at + cfg.poll_interval + 1);

  // Zero-drop: every request resolved, nothing lost at the boundary.
  EXPECT_EQ(hot_report.shed, 0);
  EXPECT_EQ(hot_report.dropped, 0);
  EXPECT_EQ(hot_report.admitted, hot_report.completed);
  ASSERT_EQ(hot_report.responses.size(), trace.size());
  // The superseded lease retired once its last in-flight batch drained.
  EXPECT_EQ(hot_report.leases_retired, 1);

  std::int64_t on_gen1 = 0, on_gen2 = 0;
  for (const auto& r : hot_report.responses) {
    ASSERT_FALSE(r.shed);
    if (r.generation == 1) {
      EXPECT_EQ(r.lease_epoch, 0);
      EXPECT_LT(r.formed, swap.tick);
      ++on_gen1;
    } else {
      ASSERT_EQ(r.generation, 2);
      EXPECT_EQ(r.lease_epoch, 1);
      EXPECT_GE(r.formed, swap.tick);
      ++on_gen2;
    }
  }
  EXPECT_GT(on_gen1, 0);
  EXPECT_GT(on_gen2, 0);

  // Cold: a fresh runtime that served generation 2 from tick 0. Every
  // hot-run response formed after the swap must be bitwise identical to
  // the cold run's response for the same request — the swap boundary is
  // invisible to the payload.
  exec::ExecContext cold_ctx(1);
  serve::ServeRuntime cold(cfg, cold_ctx);
  cold.add_model("m", cold_dir.string(), kInput);
  const auto cold_report = cold.run(trace);
  ASSERT_EQ(cold_report.responses.size(), trace.size());
  EXPECT_EQ(cold_report.dropped, 0);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const auto& h = hot_report.responses[i];
    if (h.generation != 2) continue;
    const auto& c = cold_report.responses[i];
    ASSERT_FALSE(c.shed);
    ASSERT_EQ(c.generation, 2);
    EXPECT_EQ(h.argmax, c.argmax);
    ASSERT_EQ(h.logits.shape(), c.logits.shape());
    EXPECT_EQ(std::memcmp(h.logits.data(), c.logits.data(),
                          sizeof(float) *
                              static_cast<std::size_t>(h.logits.numel())),
              0)
        << "post-swap logits differ from cold serve for request "
        << h.request_id;
  }

  fs::remove_all(hot_dir);
  fs::remove_all(cold_dir);
}

TEST(ServeRuntime, ReplaysBitwiseIdentically) {
  const auto trace = two_tenant_trace();
  auto run_once = [&] {
    exec::ExecContext ctx(2);
    serve::ServeRuntime rt(runtime_config(2), ctx);
    rt.publish_network("a", tiny_net(0.5f, 21), 1, kInput);
    rt.publish_network("b", tiny_net(0.5f, 33), 1, kInput);
    return rt.run(trace);
  };
  const auto r1 = run_once();
  const auto r2 = run_once();
  ASSERT_EQ(r1.responses.size(), r2.responses.size());
  EXPECT_EQ(r1.batches, r2.batches);
  EXPECT_EQ(r1.last_completion, r2.last_completion);
  for (std::size_t i = 0; i < r1.responses.size(); ++i) {
    const auto& a = r1.responses[i];
    const auto& b = r2.responses[i];
    EXPECT_EQ(a.batch_id, b.batch_id);
    EXPECT_EQ(a.worker, b.worker);
    EXPECT_EQ(a.start, b.start);
    EXPECT_EQ(a.completion, b.completion);
    if (!a.shed) {
      EXPECT_EQ(std::memcmp(a.logits.data(), b.logits.data(),
                            sizeof(float) *
                                static_cast<std::size_t>(a.logits.numel())),
                0);
    }
  }
}

TEST(ServeRuntime, ConfigValidationFailsFast) {
  serve::ServeConfig cfg;
  cfg.workers = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = serve::ServeConfig{};
  cfg.flops_per_tick = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = serve::ServeConfig{};
  cfg.max_batch = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);

  exec::ExecContext ctx(1);
  serve::ServeRuntime rt(serve::ServeConfig{}, ctx);
  rt.publish_network("m", tiny_net(), 1, kInput);
  rt.run({});
  EXPECT_THROW(rt.run({}), std::logic_error);  // one-shot
}

// --- Serving resilience (ISSUE 10) ---------------------------------------

std::shared_ptr<serve::ModelVersion> bare_version(graph::Network net,
                                                  serve::Tick ticks = 8) {
  auto v = std::make_shared<serve::ModelVersion>();
  v->net = std::move(net);
  v->service_ticks_per_batch = ticks;
  return v;
}

TEST(CanaryGate, FiniteLogitCheckCatchesPoisonedHead) {
  exec::ExecContext ctx(1);
  serve::CanaryGate gate(serve::CanaryConfig{});
  auto incumbent = bare_version(tiny_net(0.5f, 21));

  // A healthy candidate with totally different weights passes the default
  // gate: only the finite-logit check is always on.
  auto healthy = bare_version(tiny_net(0.25f, 22));
  auto rep = gate.evaluate(*healthy, incumbent.get(), kInput, ctx);
  EXPECT_EQ(rep.outcome, serve::CanaryOutcome::kAccepted);
  EXPECT_TRUE(rep.accepted());

  // A poisoned head carries a valid CRC but NaN logits: rejected.
  auto poisoned = bare_version(tiny_net(0.5f, 22));
  auto inj = robust::FaultInjector::from_string("poison-ckpt", 7);
  ASSERT_TRUE(inj.poison_network(poisoned->net, 0));
  rep = gate.evaluate(*poisoned, incumbent.get(), kInput, ctx);
  EXPECT_EQ(rep.outcome, serve::CanaryOutcome::kNonFiniteOutput);
  EXPECT_FALSE(rep.accepted());

  // A disabled gate waves anything through, reported as kSkipped.
  serve::CanaryConfig off;
  off.enabled = false;
  rep = serve::CanaryGate(off).evaluate(*poisoned, incumbent.get(), kInput,
                                        ctx);
  EXPECT_EQ(rep.outcome, serve::CanaryOutcome::kSkipped);
  EXPECT_TRUE(rep.accepted());
}

TEST(CanaryGate, DisagreementAndLatencyBudgetsReject) {
  exec::ExecContext ctx(1);
  auto incumbent = bare_version(tiny_net(0.5f, 21), 8);

  // Finite garbage head (poison-ckpt with scale=): every logit is finite,
  // so only the reference-disagreement check can see the corruption.
  auto garbage = bare_version(tiny_net(0.5f, 21), 8);
  auto inj = robust::FaultInjector::from_string("poison-ckpt:scale=100", 7);
  ASSERT_TRUE(inj.poison_network(garbage->net, 0));
  serve::CanaryConfig strict;
  strict.max_disagreement = 0.0;
  auto rep = serve::CanaryGate(strict).evaluate(*garbage, incumbent.get(),
                                                kInput, ctx);
  EXPECT_EQ(rep.outcome, serve::CanaryOutcome::kDisagreement);
  EXPECT_GT(rep.disagreements, 0);
  // The default budget (1.0) never rejects on disagreement.
  rep = serve::CanaryGate(serve::CanaryConfig{})
            .evaluate(*garbage, incumbent.get(), kInput, ctx);
  EXPECT_EQ(rep.outcome, serve::CanaryOutcome::kAccepted);

  // Modeled-latency regression beyond the opt-in budget.
  serve::CanaryConfig lat;
  lat.max_latency_ratio = 2.0;
  auto slow = bare_version(tiny_net(0.5f, 21), 100);
  rep = serve::CanaryGate(lat).evaluate(*slow, incumbent.get(), kInput, ctx);
  EXPECT_EQ(rep.outcome, serve::CanaryOutcome::kLatencyRegression);
  EXPECT_GT(rep.latency_ratio, 2.0);
}

TEST(GenerationHealth, WindowedCountersClearAndReset) {
  serve::GenerationHealthConfig cfg;
  cfg.window = 10;
  cfg.max_nan_batches = 0;
  cfg.max_deadline_misses = 1;
  serve::GenerationHealth h(cfg);
  EXPECT_EQ(h.breach(0), nullptr);

  h.record_batch(5, true, 0);
  EXPECT_STREQ(h.breach(5), "nan-output");
  // The verdict expires with the window (tick 5 <= 50 - 10).
  EXPECT_EQ(h.breach(50), nullptr);

  h.record_batch(51, false, 1);
  EXPECT_EQ(h.breach(51), nullptr);  // 1 miss <= budget 1
  h.record_batch(52, false, 3);
  EXPECT_STREQ(h.breach(52), "deadline-miss");
  h.reset();
  EXPECT_EQ(h.breach(52), nullptr);
  EXPECT_EQ(h.nan_batches(), 1);     // lifetime totals survive resets
  EXPECT_EQ(h.modeled_misses(), 4);
}

TEST(CircuitBreaker, ClosedOpenHalfOpenCycleIsDeterministic) {
  serve::BreakerConfig cfg;
  cfg.failure_threshold = 2;
  cfg.open_ticks = 10;
  cfg.half_open_probes = 1;
  cfg.close_after = 1;
  serve::CircuitBreaker b(cfg);

  EXPECT_EQ(b.state(), serve::BreakerState::kClosed);
  EXPECT_EQ(b.admit(0), serve::CircuitBreaker::Admission::kAdmit);
  b.on_batch(0, false);
  EXPECT_EQ(b.state(), serve::BreakerState::kClosed);  // 1 failure < 2
  b.on_batch(1, true);  // a healthy batch clears the consecutive count
  b.on_batch(2, false);
  b.on_batch(3, false);
  ASSERT_EQ(b.state(), serve::BreakerState::kOpen);
  EXPECT_EQ(b.admit(4), serve::CircuitBreaker::Admission::kShed);
  // Cooldown elapsed at 3 + 10: the next arrival is a half-open probe,
  // and the probe budget (1) sheds the arrival after it.
  EXPECT_EQ(b.admit(13), serve::CircuitBreaker::Admission::kProbe);
  EXPECT_EQ(b.state(), serve::BreakerState::kHalfOpen);
  EXPECT_EQ(b.admit(13), serve::CircuitBreaker::Admission::kShed);
  // Unhealthy probe batch reopens; a later healthy probe round closes.
  b.on_batch(14, false);
  ASSERT_EQ(b.state(), serve::BreakerState::kOpen);
  EXPECT_EQ(b.admit(24), serve::CircuitBreaker::Admission::kProbe);
  b.on_batch(25, true);
  EXPECT_EQ(b.state(), serve::BreakerState::kClosed);

  const auto& t = b.transitions();
  ASSERT_EQ(t.size(), 5u);
  EXPECT_EQ(t[0].to, serve::BreakerState::kOpen);
  EXPECT_EQ(t[1].to, serve::BreakerState::kHalfOpen);
  EXPECT_EQ(t[2].to, serve::BreakerState::kOpen);
  EXPECT_EQ(t[3].to, serve::BreakerState::kHalfOpen);
  EXPECT_EQ(t[4].to, serve::BreakerState::kClosed);
}

TEST(Registry, TornGenerationIsQuarantinedLoudlyOnce) {
  const fs::path dir = scratch_dir("torn");
  auto v1 = tiny_net(0.5f, 21);
  write_generation(dir, 1, v1);
  auto v2 = tiny_net(0.5f, 22);
  write_generation(dir, 2, v2);
  // Tear generation 2 through its CRC footer — the producer-side fault a
  // process dying mid-save leaves behind.
  auto inj = robust::FaultInjector::from_string("torn-ckpt:epoch=2", 5);
  ASSERT_TRUE(inj.corrupt_checkpoint_files(
      {(dir / "ckpt-epoch-2.bin").string()}, 2));

  serve::ModelRegistry reg(serve::RegistryConfig{});
  reg.add_model("m", dir.string(), kInput);
  serve::LeaseTable leases;
  exec::ExecContext ctx(1);
  auto swaps = reg.poll(ctx, leases);
  ASSERT_EQ(swaps.size(), 1u);
  EXPECT_EQ(swaps[0].to_generation, 1);

  ASSERT_EQ(reg.quarantined().size(), 1u);
  EXPECT_EQ(reg.quarantined()[0].generation, 2);
  EXPECT_EQ(reg.quarantined()[0].reason, "scrub-invalid");
  // A second poll does not re-announce the same corpse.
  write_generation(dir, 3, v2);  // force a rescan with a new valid file
  swaps = reg.poll(ctx, leases);
  ASSERT_EQ(swaps.size(), 1u);
  EXPECT_EQ(swaps[0].to_generation, 3);
  EXPECT_EQ(reg.quarantined().size(), 1u);
  fs::remove_all(dir);
}

TEST(ServeRuntime, PoisonedGenerationIsCanaryRejectedNeverServed) {
  const fs::path dir = scratch_dir("poison");
  auto gen1 = tiny_net(0.5f, 21);
  write_generation(dir, 1, gen1);

  serve::TraceSpec spec;
  spec.model = "m";
  spec.mean_interarrival = 3.0;
  spec.end = 300;
  spec.deadline = 60;
  spec.input = kInput;
  spec.seed = 9;
  const auto trace = serve::synthesize_trace({spec});

  auto cfg = runtime_config(2);
  cfg.poll_interval = 5;
  exec::ExecContext ctx(1);
  serve::ServeRuntime rt(cfg, ctx);
  rt.add_model("m", dir.string(), kInput);
  rt.schedule(100, [&] {
    // The trainer saves a generation whose head was silently corrupted:
    // the file's CRC is valid, the numbers are not.
    auto net = tiny_net(0.5f, 22);
    auto inj = robust::FaultInjector::from_string("poison-ckpt:epoch=2", 7);
    ASSERT_TRUE(inj.poison_network(net, 2));
    write_generation(dir, 2, net);
  });
  const auto report = rt.run(trace);

  // The scrub passed it (bytes fine), the canary refused it (numbers not):
  // generation 2 is never observable in any response.
  ASSERT_EQ(report.swaps.size(), 1u);  // cold start only
  EXPECT_EQ(report.swaps[0].record.to_generation, 1);
  for (const auto& r : report.responses) {
    if (!r.shed) {
      EXPECT_EQ(r.generation, 1);
    }
  }
  EXPECT_EQ(report.dropped, 0);
  EXPECT_GT(report.completed, 0);
  ASSERT_GE(report.quarantined, 1);
  ASSERT_EQ(rt.registry().quarantined().size(), 1u);
  const auto& q = rt.registry().quarantined()[0];
  EXPECT_EQ(q.generation, 2);
  EXPECT_EQ(q.reason, "canary:non-finite-output");
  EXPECT_EQ(q.canary.outcome, serve::CanaryOutcome::kNonFiniteOutput);
  // The file itself scrubbed valid — this was not a CRC catch.
  const auto* scrubber = rt.registry().scrubber("m");
  ASSERT_NE(scrubber, nullptr);
  for (const auto& g : scrubber->generations()) {
    if (g.epoch == 2) {
      EXPECT_TRUE(g.valid);
    }
  }
  ASSERT_EQ(report.health_events.size(), 1u);
  EXPECT_EQ(report.health_events[0].type,
            robust::EventType::kCanaryRejected);
  fs::remove_all(dir);
}

TEST(ServeRuntime, FlakyOutputRollsBackBitwiseEqualToCleanRun) {
  const fs::path dir = scratch_dir("rollback");
  const fs::path ref_dir = scratch_dir("rollback_ref");
  auto gen1 = tiny_net(0.5f, 21);
  write_generation(dir, 1, gen1);
  write_generation(ref_dir, 1, gen1);

  serve::TraceSpec spec;
  spec.model = "m";
  spec.mean_interarrival = 3.0;
  spec.end = 600;
  spec.deadline = 60;
  spec.input = kInput;
  spec.seed = 9;
  const auto trace = serve::synthesize_trace({spec});

  auto make_cfg = [&](int workers) {
    auto cfg = runtime_config(workers);
    cfg.poll_interval = 5;
    // Generation 3's very first served batch emits one NaN logit.
    cfg.fault_spec = "flaky-output:epoch=3,count=1";
    return cfg;
  };
  // Generation 2 is poisoned (canary rejects it at the gate); generation 3
  // is healthy at rest — same width as generation 1, so pricing, admission
  // and batch composition are identical — but flaky at runtime.
  exec::ExecContext ctx(1);
  serve::ServeRuntime rt(make_cfg(2), ctx);
  rt.add_model("m", dir.string(), kInput);
  rt.schedule(150, [&] {
    auto bad = tiny_net(0.5f, 22);
    auto inj = robust::FaultInjector::from_string("poison-ckpt:epoch=2", 7);
    ASSERT_TRUE(inj.poison_network(bad, 2));
    write_generation(dir, 2, bad);
  });
  rt.schedule(200, [&] {
    auto gen3 = tiny_net(0.5f, 23);
    write_generation(dir, 3, gen3);
  });
  const auto faulty = rt.run(trace);

  // One rollback: generation 3 indicted by its NaN batch, generation 1
  // restored; the poisoned generation 2 never served at all.
  ASSERT_EQ(faulty.rollbacks.size(), 1u);
  const auto& rb = faulty.rollbacks[0];
  EXPECT_EQ(rb.from_generation, 3);
  EXPECT_EQ(rb.to_generation, 1);
  EXPECT_EQ(rb.reason, "nan-output");
  EXPECT_EQ(faulty.dropped, 0);
  EXPECT_GE(faulty.quarantined, 2);  // canary reject + rollback indictment
  std::int64_t on_gen3 = 0;
  for (const auto& r : faulty.responses) {
    EXPECT_NE(r.generation, 2);
    on_gen3 += (!r.shed && r.generation == 3) ? 1 : 0;
  }
  EXPECT_GT(on_gen3, 0);  // the bad generation really did serve briefly
  bool saw_rollback_event = false;
  for (const auto& ev : faulty.health_events) {
    saw_rollback_event |= ev.type == robust::EventType::kGenerationRollback;
  }
  EXPECT_TRUE(saw_rollback_event);

  // Reference: the same trace against a runtime that only ever had
  // generation 1. Every response formed at/after the rollback tick must be
  // bitwise identical — the rollback restored the *same weights object*
  // the old epoch served, so the bad generation leaves no numeric residue.
  exec::ExecContext ref_ctx(1);
  auto ref_cfg = runtime_config(2);
  ref_cfg.poll_interval = 5;
  serve::ServeRuntime ref_rt(ref_cfg, ref_ctx);
  ref_rt.add_model("m", ref_dir.string(), kInput);
  const auto clean = ref_rt.run(trace);
  ASSERT_EQ(clean.responses.size(), faulty.responses.size());
  std::int64_t compared = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const auto& f = faulty.responses[i];
    const auto& c = clean.responses[i];
    ASSERT_EQ(f.request_id, c.request_id);
    // Batches formed at the rollback tick itself still pinned the bad
    // lease (formation runs before the breach verdict that tick).
    if (f.shed || f.formed <= rb.tick) continue;
    ++compared;
    EXPECT_EQ(f.generation, 1);
    EXPECT_EQ(f.argmax, c.argmax);
    ASSERT_EQ(f.logits.shape(), c.logits.shape());
    EXPECT_EQ(std::memcmp(f.logits.data(), c.logits.data(),
                          sizeof(float) *
                              static_cast<std::size_t>(f.logits.numel())),
              0)
        << "post-rollback logits differ from the clean run for request "
        << f.request_id;
  }
  EXPECT_GT(compared, 0);

  // Worker count cannot move the breach, the rollback tick, or a payload.
  const fs::path wide_dir = scratch_dir("rollback_wide");
  write_generation(wide_dir, 1, gen1);
  exec::ExecContext wide_ctx(1);
  serve::ServeRuntime wide_rt(make_cfg(4), wide_ctx);
  wide_rt.add_model("m", wide_dir.string(), kInput);
  wide_rt.schedule(150, [&] {
    auto bad = tiny_net(0.5f, 22);
    auto inj = robust::FaultInjector::from_string("poison-ckpt:epoch=2", 7);
    ASSERT_TRUE(inj.poison_network(bad, 2));
    write_generation(wide_dir, 2, bad);
  });
  wide_rt.schedule(200, [&] {
    auto gen3 = tiny_net(0.5f, 23);
    write_generation(wide_dir, 3, gen3);
  });
  const auto wide = wide_rt.run(trace);
  ASSERT_EQ(wide.rollbacks.size(), 1u);
  EXPECT_EQ(wide.rollbacks[0].tick, rb.tick);
  EXPECT_EQ(wide.rollbacks[0].from_generation, rb.from_generation);
  EXPECT_EQ(wide.rollbacks[0].to_generation, rb.to_generation);
  ASSERT_EQ(wide.responses.size(), faulty.responses.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const auto& a = faulty.responses[i];
    const auto& b = wide.responses[i];
    EXPECT_EQ(a.shed, b.shed);
    EXPECT_EQ(a.generation, b.generation);
    EXPECT_EQ(a.argmax, b.argmax);
    if (!a.shed) {
      EXPECT_EQ(std::memcmp(a.logits.data(), b.logits.data(),
                            sizeof(float) *
                                static_cast<std::size_t>(a.logits.numel())),
                0);
    }
  }

  fs::remove_all(dir);
  fs::remove_all(ref_dir);
  fs::remove_all(wide_dir);
}

TEST(ServeRuntime, SlowModelDeadlineBreachTriggersRollback) {
  const fs::path dir = scratch_dir("slow");
  auto gen1 = tiny_net(0.5f, 21);
  write_generation(dir, 1, gen1);

  serve::TraceSpec spec;
  spec.model = "m";
  spec.mean_interarrival = 3.0;
  spec.end = 500;
  spec.deadline = 60;
  spec.input = kInput;
  spec.seed = 9;
  const auto trace = serve::synthesize_trace({spec});

  auto cfg = runtime_config(2);
  cfg.poll_interval = 5;
  // Opt in to the deadline-miss breach: generation 2 is the suspect.
  cfg.health.max_deadline_misses = 0;
  // Every generation-2 batch is inflated 50x on the modeled clock.
  cfg.fault_spec = "slow-model:epoch=2,scale=50,count=0";
  exec::ExecContext ctx(1);
  serve::ServeRuntime rt(cfg, ctx);
  rt.add_model("m", dir.string(), kInput);
  rt.schedule(150, [&] {
    auto gen2 = tiny_net(0.5f, 22);
    write_generation(dir, 2, gen2);
  });
  const auto report = rt.run(trace);

  ASSERT_EQ(report.rollbacks.size(), 1u);
  EXPECT_EQ(report.rollbacks[0].from_generation, 2);
  EXPECT_EQ(report.rollbacks[0].to_generation, 1);
  EXPECT_EQ(report.rollbacks[0].reason, "deadline-miss");
  EXPECT_EQ(report.dropped, 0);
  // Every response formed after the rollback is back on generation 1.
  for (const auto& r : report.responses) {
    if (!r.shed && r.formed > report.rollbacks[0].tick) {
      EXPECT_EQ(r.generation, 1);
    }
  }
  fs::remove_all(dir);
}

TEST(ServeRuntime, BreakerOpensShedsAndRecloses) {
  serve::TraceSpec spec;
  spec.model = "m";
  spec.mean_interarrival = 2.0;
  spec.end = 400;
  spec.deadline = 60;
  spec.input = kInput;
  spec.seed = 13;
  const auto trace = serve::synthesize_trace({spec});

  auto run_at = [&](int workers) {
    auto cfg = runtime_config(workers);
    // The first three served batches emit NaN logits; threshold 2 opens
    // the breaker, and the exhausted fault lets the half-open probe close
    // it again.
    cfg.fault_spec = "flaky-output:count=3";
    cfg.breaker.failure_threshold = 2;
    cfg.breaker.open_ticks = 40;
    cfg.breaker.half_open_probes = 1;
    cfg.breaker.close_after = 1;
    exec::ExecContext ctx(1);
    serve::ServeRuntime rt(cfg, ctx);
    rt.publish_network("m", tiny_net(0.5f, 21), 1, kInput);
    return rt.run(trace);
  };
  const auto report = run_at(1);

  ASSERT_TRUE(report.breaker_transitions.count("m"));
  const auto& transitions = report.breaker_transitions.at("m");
  ASSERT_GE(transitions.size(), 3u);
  EXPECT_EQ(transitions[0].from, serve::BreakerState::kClosed);
  EXPECT_EQ(transitions[0].to, serve::BreakerState::kOpen);
  EXPECT_EQ(transitions.back().to, serve::BreakerState::kClosed);
  EXPECT_GT(report.shed_circuit_open, 0);
  EXPECT_EQ(report.dropped, 0);
  std::int64_t circuit_sheds = 0;
  for (const auto& r : report.responses) {
    circuit_sheds += (r.shed && r.reason == serve::ShedReason::kCircuitOpen)
                         ? 1
                         : 0;
  }
  EXPECT_EQ(circuit_sheds, report.shed_circuit_open);
  bool saw_breaker_event = false;
  for (const auto& ev : report.health_events) {
    saw_breaker_event |= ev.type == robust::EventType::kBreakerStateChange;
  }
  EXPECT_TRUE(saw_breaker_event);

  // Breaker transitions ride the modeled clock: identical under 4 workers.
  const auto wide = run_at(4);
  ASSERT_TRUE(wide.breaker_transitions.count("m"));
  const auto& wt = wide.breaker_transitions.at("m");
  ASSERT_EQ(wt.size(), transitions.size());
  for (std::size_t i = 0; i < wt.size(); ++i) {
    EXPECT_EQ(wt[i].tick, transitions[i].tick);
    EXPECT_EQ(wt[i].from, transitions[i].from);
    EXPECT_EQ(wt[i].to, transitions[i].to);
  }
  EXPECT_EQ(wide.shed_circuit_open, report.shed_circuit_open);
}

TEST(ServeRuntime, ChaosMatrixZeroDropUnderEveryFaultKind) {
  struct Scenario {
    const char* tag;
    const char* producer_fault;  ///< applied when generation 2 is written
    const char* serve_fault;     ///< the runtime's own fault_spec
    std::int64_t expect_misses_opt_in;
  };
  const Scenario scenarios[] = {
      {"poison", "poison-ckpt:epoch=2", "", -1},
      {"torn", "torn-ckpt:epoch=2", "", -1},
      {"slow", "", "slow-model:epoch=2,scale=50,count=0", 0},
      {"flaky", "", "flaky-output:epoch=2,count=2", -1},
  };
  serve::TraceSpec spec;
  spec.model = "m";
  spec.mean_interarrival = 3.0;
  spec.end = 400;
  spec.deadline = 60;
  spec.input = kInput;
  spec.seed = 17;
  const auto trace = serve::synthesize_trace({spec});

  for (const Scenario& s : scenarios) {
    SCOPED_TRACE(s.tag);
    const fs::path dir = scratch_dir(std::string("chaos_") + s.tag);
    auto gen1 = tiny_net(0.5f, 21);
    write_generation(dir, 1, gen1);

    auto cfg = runtime_config(2);
    cfg.poll_interval = 5;
    cfg.fault_spec = s.serve_fault;
    cfg.health.max_deadline_misses = s.expect_misses_opt_in;
    exec::ExecContext ctx(1);
    serve::ServeRuntime rt(cfg, ctx);
    rt.add_model("m", dir.string(), kInput);
    rt.schedule(150, [&] {
      auto gen2 = tiny_net(0.5f, 22);
      const std::string producer = s.producer_fault;
      if (producer.find("poison") != std::string::npos) {
        auto inj = robust::FaultInjector::from_string(producer, 7);
        ASSERT_TRUE(inj.poison_network(gen2, 2));
        write_generation(dir, 2, gen2);
      } else if (!producer.empty()) {
        write_generation(dir, 2, gen2);
        auto inj = robust::FaultInjector::from_string(producer, 7);
        ASSERT_TRUE(inj.corrupt_checkpoint_files(
            {(dir / "ckpt-epoch-2.bin").string()}, 2));
      } else {
        write_generation(dir, 2, gen2);
      }
    });
    const auto report = rt.run(trace);

    // The invariants every fault kind must leave standing.
    EXPECT_EQ(report.dropped, 0);
    EXPECT_EQ(report.admitted, report.completed);
    ASSERT_EQ(report.responses.size(), trace.size());
    if (s.producer_fault[0] != '\0') {
      // Producer-side corruption: generation 2 never serves a byte.
      for (const auto& r : report.responses) {
        if (!r.shed) {
      EXPECT_EQ(r.generation, 1);
    }
      }
      EXPECT_GE(report.quarantined, 1);
    } else {
      // Runtime faults: generation 2 served, breached, and rolled back.
      ASSERT_EQ(report.rollbacks.size(), 1u);
      EXPECT_EQ(report.rollbacks[0].from_generation, 2);
      EXPECT_EQ(report.rollbacks[0].to_generation, 1);
    }
    fs::remove_all(dir);
  }
}

}  // namespace
}  // namespace pt
