// Telemetry tests: registry semantics (counters/gauges/histograms), the
// near-zero-cost disabled path, hierarchical ScopedTimer spans, JSON and
// JSONL round-trips, per-layer FLOPs from a real profiled forward pass
// matching cost::FlopsModel before and after a reconfiguration, and the
// instrumented trainer's run records (manifest + one line per epoch with a
// monotonically non-increasing cost trajectory).
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>

#include "core/trainer.h"
#include "cost/flops.h"
#include "data/synthetic.h"
#include "models/builders.h"
#include "nn/conv2d.h"
#include "prune/reconfigure.h"
#include "telemetry/bench_export.h"
#include "telemetry/json.h"
#include "telemetry/metrics.h"
#include "telemetry/record.h"

namespace pt::telemetry {
namespace {

namespace fs = std::filesystem;

/// Fresh per-test scratch directory (pid suffix: test_telemetry and
/// test_telemetry_asan run concurrently under ctest).
fs::path scratch_dir(const std::string& tag) {
  const fs::path p = fs::temp_directory_path() /
                     ("pt_telemetry_" + tag + "_" + std::to_string(::getpid()));
  fs::remove_all(p);
  fs::create_directories(p);
  return p;
}

/// Telemetry state is process-global: every test starts enabled with an
/// empty registry and leaves the process with telemetry off again.
class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::global().reset();
    set_enabled(true);
  }
  void TearDown() override {
    set_enabled(false);
    MetricsRegistry::global().reset();
  }
};

TEST_F(TelemetryTest, CountersAccumulateAndGaugesKeepLastValue) {
  count("a/hits");
  count("a/hits", 2.5);
  gauge("a/level", 7);
  gauge("a/level", 3);
  auto& reg = MetricsRegistry::global();
  EXPECT_DOUBLE_EQ(reg.counter("a/hits"), 3.5);
  EXPECT_DOUBLE_EQ(reg.gauge("a/level"), 3);
  EXPECT_DOUBLE_EQ(reg.counter("absent"), 0);
  EXPECT_DOUBLE_EQ(reg.gauge("absent"), 0);
}

TEST_F(TelemetryTest, HistogramBucketsCountsAndStats) {
  auto& reg = MetricsRegistry::global();
  reg.define_histogram("lat", {1.0, 10.0, 100.0});
  for (double v : {0.5, 5.0, 5.0, 50.0, 500.0}) observe("lat", v);
  const auto h = reg.histograms().at("lat");
  ASSERT_EQ(h.counts.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(h.counts[0], 1u);
  EXPECT_EQ(h.counts[1], 2u);
  EXPECT_EQ(h.counts[2], 1u);
  EXPECT_EQ(h.counts[3], 1u);
  EXPECT_EQ(h.total, 5u);
  EXPECT_DOUBLE_EQ(h.sum, 560.5);
  EXPECT_DOUBLE_EQ(h.min, 0.5);
  EXPECT_DOUBLE_EQ(h.max, 500.0);
}

TEST_F(TelemetryTest, UndeclaredHistogramGetsDefaultBuckets) {
  observe("auto", 42.0);
  const auto h = MetricsRegistry::global().histograms().at("auto");
  EXPECT_GT(h.bounds.size(), 0u);
  EXPECT_EQ(h.total, 1u);
}

TEST_F(TelemetryTest, DisabledHelpersRecordNothing) {
  set_enabled(false);
  count("off/c");
  gauge("off/g", 1);
  observe("off/h", 1);
  event("off/e", "never");
  { ScopedTimer t("off/span"); }
  set_enabled(true);
  auto& reg = MetricsRegistry::global();
  EXPECT_TRUE(reg.counters().empty());
  EXPECT_TRUE(reg.gauges().empty());
  EXPECT_TRUE(reg.histograms().empty());
  EXPECT_TRUE(reg.spans().empty());
  EXPECT_TRUE(reg.events().empty());
}

TEST_F(TelemetryTest, ScopedTimersNestIntoHierarchicalNames) {
  {
    ScopedTimer outer("train");
    {
      ScopedTimer inner("epoch");
      { ScopedTimer leaf("sgd"); }
      { ScopedTimer leaf("sgd"); }
    }
  }
  const auto spans = MetricsRegistry::global().spans();
  ASSERT_TRUE(spans.count("train"));
  ASSERT_TRUE(spans.count("train/epoch"));
  ASSERT_TRUE(spans.count("train/epoch/sgd"));
  EXPECT_EQ(spans.at("train").count, 1u);
  EXPECT_EQ(spans.at("train/epoch/sgd").count, 2u);
  // A parent's accumulated time covers its children.
  EXPECT_GE(spans.at("train").total_seconds,
            spans.at("train/epoch/sgd").total_seconds);
  EXPECT_GE(spans.at("train/epoch/sgd").max_seconds,
            spans.at("train/epoch/sgd").min_seconds);
}

TEST_F(TelemetryTest, EventsCarryMonotoneSequenceNumbers) {
  event("health/nan", "loss went NaN");
  event("recovery/rollback", "attempt 1");
  const auto events = MetricsRegistry::global().events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_LT(events[0].seq, events[1].seq);
  EXPECT_EQ(events[0].name, "health/nan");
  EXPECT_EQ(events[1].detail, "attempt 1");
  EXPECT_GE(events[1].at_seconds, events[0].at_seconds);
}

TEST(Json, ParseDumpRoundTrip) {
  const std::string text =
      R"({"a":1,"b":[true,null,"x\n"],"c":{"d":-2.5},"e":9007199254740992.0})";
  const Json j = Json::parse(text);
  const Json j2 = Json::parse(j.dump());
  EXPECT_EQ(j2.at("a").as_int(), 1);
  EXPECT_TRUE(j2.at("b").at(0).as_bool());
  EXPECT_EQ(j2.at("b").at(2).as_string(), "x\n");
  EXPECT_DOUBLE_EQ(j2.at("c").at("d").as_number(), -2.5);
  EXPECT_THROW(Json::parse("{broken"), std::runtime_error);
}

EpochRecord sample_record() {
  EpochRecord r;
  r.epoch = 3;
  r.batch_size = 64;
  r.lr = 0.05;
  r.train_loss = 1.25;
  r.train_acc = 0.5;
  r.test_acc = 0.625;
  r.lasso_loss = 0.01;
  r.flops_per_sample_train = 3e6;
  r.flops_per_sample_inf = 1e6;
  r.epoch_train_flops = 3e8;
  r.epoch_bn_traffic = 1e5;
  r.memory_bytes = 2e6;
  r.comm_bytes_per_gpu = 4e5;
  r.comm_time_modeled = 0.125;
  r.gpu_time_modeled = 0.25;
  r.wall_seconds = 1.5;
  r.channels_alive = 42;
  r.conv_layers = 7;
  r.reconfig.happened = true;
  r.reconfig.channels_before = 48;
  r.reconfig.channels_after = 42;
  r.reconfig.convs_removed = 1;
  r.reconfig.blocks_removed = 0;
  r.layers.push_back({2, "stem", "conv2d", 1e5, 2e5, 0.5, 0.75, 10, 10});
  r.sparsity.push_back({"stem", 0.875, 0.5});
  r.counters["dist/steps"] = 12;
  r.gauges["prune/channels_alive"] = 42;
  r.spans["train/epoch"] = SpanStats{3, 4.5, 1.0, 2.0};
  return r;
}

TEST(EpochRecordJson, RoundTripsFieldForField) {
  const EpochRecord r = sample_record();
  const EpochRecord r2 = EpochRecord::from_json(r.to_json());
  EXPECT_EQ(r2.epoch, r.epoch);
  EXPECT_EQ(r2.batch_size, r.batch_size);
  EXPECT_DOUBLE_EQ(r2.lr, r.lr);
  EXPECT_DOUBLE_EQ(r2.train_loss, r.train_loss);
  EXPECT_DOUBLE_EQ(r2.test_acc, r.test_acc);
  EXPECT_DOUBLE_EQ(r2.flops_per_sample_train, r.flops_per_sample_train);
  EXPECT_DOUBLE_EQ(r2.flops_per_sample_inf, r.flops_per_sample_inf);
  EXPECT_DOUBLE_EQ(r2.memory_bytes, r.memory_bytes);
  EXPECT_EQ(r2.channels_alive, r.channels_alive);
  EXPECT_TRUE(r2.reconfig.happened);
  EXPECT_EQ(r2.reconfig.channels_before, 48);
  EXPECT_EQ(r2.reconfig.channels_after, 42);
  ASSERT_EQ(r2.layers.size(), 1u);
  EXPECT_EQ(r2.layers[0].node, 2);
  EXPECT_EQ(r2.layers[0].name, "stem");
  EXPECT_DOUBLE_EQ(r2.layers[0].fwd_flops, 1e5);
  EXPECT_EQ(r2.layers[0].fwd_calls, 10u);
  ASSERT_EQ(r2.sparsity.size(), 1u);
  EXPECT_DOUBLE_EQ(r2.sparsity[0].channel_density, 0.875);
  EXPECT_DOUBLE_EQ(r2.counters.at("dist/steps"), 12);
  EXPECT_DOUBLE_EQ(r2.gauges.at("prune/channels_alive"), 42);
  ASSERT_TRUE(r2.spans.count("train/epoch"));
  EXPECT_EQ(r2.spans.at("train/epoch").count, 3u);
  EXPECT_DOUBLE_EQ(r2.spans.at("train/epoch").total_seconds, 4.5);
}

TEST(EpochRecordJson, RejectsFutureSchemaVersion) {
  Json j = sample_record().to_json();
  j["schema_version"] = Json(double(kSchemaVersion + 1));
  EXPECT_THROW(EpochRecord::from_json(j), std::runtime_error);
}

TEST(RunRecorderTest, ManifestAndRecordsRoundTripThroughDisk) {
  const fs::path dir = scratch_dir("recorder");
  RunManifest m;
  m.run_name = "unit";
  m.git = "deadbeef";
  m.created_unix = 1700000000;
  m.seed = 123;
  m.config = Json::object();
  m.config["epochs"] = Json(8.0);
  RunRecorder rec(dir.string(), m);

  EpochRecord r = sample_record();
  rec.append(r);
  r.epoch = 4;
  r.flops_per_sample_inf = 9e5;
  rec.append(r);

  const RunManifest m2 = RunRecorder::read_manifest(dir.string());
  EXPECT_EQ(m2.run_name, "unit");
  EXPECT_EQ(m2.git, "deadbeef");
  EXPECT_EQ(m2.seed, 123u);
  EXPECT_EQ(m2.config.at("epochs").as_int(), 8);

  const auto records = RunRecorder::read_records(dir.string());
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].epoch, 3);
  EXPECT_EQ(records[1].epoch, 4);
  EXPECT_DOUBLE_EQ(records[1].flops_per_sample_inf, 9e5);
  fs::remove_all(dir);
}

TEST(RunRecorderTest, ReadRecordsOnEmptyDirectoryIsEmpty) {
  const fs::path dir = scratch_dir("empty");
  EXPECT_TRUE(RunRecorder::read_records(dir.string()).empty());
  fs::remove_all(dir);
}

models::ModelConfig tiny_model() {
  models::ModelConfig cfg;
  cfg.image_h = 8;
  cfg.image_w = 8;
  cfg.classes = 4;
  cfg.width_mult = 0.5f;
  cfg.seed = 21;
  return cfg;
}

/// The tentpole invariant: per-layer FLOPs in the records are the
/// cost::FlopsModel analytical values, and the measured profile comes from
/// real executed passes — before AND after a reconfiguration.
TEST(LayerRecords, MatchAnalyticalFlopsBeforeAndAfterReconfig) {
  auto net = models::build_resnet_basic(8, tiny_model());
  const Shape input{3, 8, 8};
  net.set_profiling(true);
  Rng rng(7);

  auto run_passes = [&](int n) {
    for (int i = 0; i < n; ++i) {
      Tensor x = Tensor::randn({2, 3, 8, 8}, rng);
      Tensor y = net.forward(x, true);
      net.backward(Tensor::full(y.shape(), 1.f / float(y.shape()[0])));
    }
  };
  auto check_against_model = [&](int expected_calls, double* total_out) {
    const cost::FlopsModel fm(net, input);
    const auto records = collect_layer_records(net, input);
    double total_fwd = 0;
    for (const auto& lr : records) {
      total_fwd += lr.fwd_flops;
      EXPECT_EQ(lr.fwd_calls, std::uint64_t(expected_calls)) << lr.name;
      EXPECT_EQ(lr.bwd_calls, std::uint64_t(expected_calls)) << lr.name;
      EXPECT_GE(lr.fwd_seconds, 0.0);
    }
    EXPECT_DOUBLE_EQ(total_fwd, fm.inference_flops());
    // Every analytical layer appears in the records with identical FLOPs.
    ASSERT_EQ(records.size(), fm.layers().size());
    for (std::size_t i = 0; i < records.size(); ++i) {
      EXPECT_EQ(records[i].node, fm.layers()[i].node);
      EXPECT_DOUBLE_EQ(records[i].fwd_flops, fm.layers()[i].forward);
      EXPECT_DOUBLE_EQ(records[i].bwd_flops, fm.layers()[i].backward);
    }
    *total_out = total_fwd;
  };

  run_passes(3);
  double dense_flops = 0;
  check_against_model(3, &dense_flops);

  // Force a real reconfiguration: zero every conv, then slice. The
  // min-channels floor keeps the trunk alive; residual paths are removed.
  for (int conv_node : net.nodes_of_type<nn::Conv2d>()) {
    auto& w = net.layer_as<nn::Conv2d>(conv_node).weight().value;
    for (std::int64_t i = 0; i < w.numel(); ++i) w.data()[i] = 0.f;
  }
  prune::Reconfigurer reconf(net, 1e-4f, 1);
  const auto stats = reconf.reconfigure();
  ASSERT_TRUE(stats.changed);
  ASSERT_LT(stats.channels_after, stats.channels_before);

  net.reset_profile();
  run_passes(2);
  double pruned_flops = 0;
  check_against_model(2, &pruned_flops);
  EXPECT_LT(pruned_flops, dense_flops);
}

data::SyntheticSpec tiny_data() {
  data::SyntheticSpec spec;
  spec.name = "tiny";
  spec.classes = 4;
  spec.channels = 3;
  spec.height = 8;
  spec.width = 8;
  spec.train_samples = 96;
  spec.test_samples = 64;
  spec.noise = 0.4f;
  spec.max_shift = 1;
  spec.seed = 5;
  return spec;
}

/// End-to-end: an instrumented PruneTrainer run writes a manifest plus one
/// record per epoch whose cost trajectory is monotone non-increasing and
/// whose per-layer FLOPs sum to the trainer-reported per-sample cost.
TEST(TrainerTelemetry, WritesManifestAndOneRecordPerEpoch) {
  const fs::path dir = scratch_dir("trainer");
  MetricsRegistry::global().reset();
  auto data = data::SyntheticImageDataset(tiny_data());
  auto net = models::build_resnet_basic(8, tiny_model());
  core::TrainConfig cfg;
  cfg.epochs = 4;
  cfg.batch_size = 32;
  cfg.base_lr = 0.05f;
  cfg.reconfig_interval = 2;
  cfg.lasso_ratio = 0.25f;
  cfg.policy = core::PrunePolicy::kPruneTrain;
  cfg.metrics_dir = dir.string();
  cfg.run_name = "unit-train";
  core::PruneTrainer trainer(net, data, cfg);
  const auto result = trainer.run();
  set_enabled(false);

  const RunManifest m = RunRecorder::read_manifest(dir.string());
  EXPECT_EQ(m.run_name, "unit-train");
  EXPECT_EQ(m.config.at("epochs").as_int(), 4);

  const auto records = RunRecorder::read_records(dir.string());
  ASSERT_EQ(records.size(), std::size_t(cfg.epochs));
  for (std::size_t e = 0; e < records.size(); ++e) {
    const auto& r = records[e];
    EXPECT_EQ(r.epoch, std::int64_t(e));
    // Record mirrors the trainer's own EpochStats.
    EXPECT_DOUBLE_EQ(r.flops_per_sample_inf,
                     result.epochs[e].flops_per_sample_inf);
    EXPECT_DOUBLE_EQ(r.memory_bytes, double(result.epochs[e].memory_bytes));
    EXPECT_EQ(r.channels_alive, result.epochs[e].channels_alive);
    // Per-layer analytical FLOPs sum to the reported per-sample cost.
    double total_fwd = 0;
    for (const auto& lr : r.layers) total_fwd += lr.fwd_flops;
    EXPECT_NEAR(total_fwd, r.flops_per_sample_inf,
                1e-6 * r.flops_per_sample_inf);
    EXPECT_FALSE(r.sparsity.empty());
    if (e > 0) {
      EXPECT_LE(records[e].flops_per_sample_inf,
                records[e - 1].flops_per_sample_inf * (1.0 + 1e-9));
      EXPECT_LE(records[e].memory_bytes,
                records[e - 1].memory_bytes * (1.0 + 1e-9));
    }
  }
  // The trainer's spans made it into the final record, and every
  // reconfiguration occurrence was counted.
  const auto& last = records.back();
  EXPECT_TRUE(last.spans.count("train/epoch/sgd"));
  std::int64_t reconfigs = 0;
  for (const auto& r : records) reconfigs += r.reconfig.happened ? 1 : 0;
  ASSERT_GT(reconfigs, 0);  // interval 2 over 4 epochs must fire
  EXPECT_DOUBLE_EQ(last.counters.at("prune/reconfigurations"),
                   double(reconfigs));

  // bench_export over the same directory: totals and sanity flags.
  const Json summary = bench_summary(dir.string(), "unit");
  EXPECT_EQ(summary.at("name").as_string(), "unit");
  EXPECT_EQ(summary.at("epochs").as_int(), cfg.epochs);
  EXPECT_TRUE(summary.at("flops_monotone_nonincreasing").as_bool());
  EXPECT_TRUE(summary.at("memory_monotone_nonincreasing").as_bool());
  const fs::path out = dir / "BENCH_unit.json";
  bench_export(dir.string(), "unit", out.string());
  EXPECT_TRUE(fs::exists(out));
  fs::remove_all(dir);
}

TEST(BenchSummary, FlagsNonMonotoneTrajectories) {
  const fs::path dir = scratch_dir("monotone");
  RunManifest m;
  m.run_name = "mono";
  RunRecorder rec(dir.string(), m);
  EpochRecord r = sample_record();
  r.epoch = 0;
  rec.append(r);
  r.epoch = 1;
  r.flops_per_sample_train *= 2;  // cost grows: not a PruneTrain trajectory
  rec.append(r);
  const Json summary = bench_summary(dir.string(), "mono");
  EXPECT_FALSE(summary.at("flops_monotone_nonincreasing").as_bool());
  EXPECT_TRUE(summary.at("memory_monotone_nonincreasing").as_bool());
  fs::remove_all(dir);
}

}  // namespace
}  // namespace pt::telemetry
