// Unit and property tests for the tensor substrate: shapes, storage
// semantics, GEMM vs. a naive reference, and the im2col/col2im adjoint
// property that pins down conv lowering.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "tensor/im2col.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace pt {
namespace {

TEST(Shape, NumelAndEquality) {
  Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3);
  EXPECT_EQ(s.numel(), 24);
  EXPECT_EQ(s, (Shape{2, 3, 4}));
  EXPECT_NE(s, (Shape{2, 3, 5}));
  EXPECT_NE(s, (Shape{2, 3}));
  EXPECT_EQ(Shape{}.numel(), 1);
}

TEST(Shape, ToString) {
  EXPECT_EQ((Shape{2, 3}).to_string(), "[2, 3]");
  EXPECT_EQ(Shape{}.to_string(), "[]");
}

TEST(Tensor, ZerosAndFill) {
  Tensor t({2, 3});
  for (float v : t.span()) EXPECT_EQ(v, 0.f);
  t.fill(2.5f);
  for (float v : t.span()) EXPECT_EQ(v, 2.5f);
}

TEST(Tensor, FullFactory) {
  Tensor t = Tensor::full({4}, -1.f);
  for (float v : t.span()) EXPECT_EQ(v, -1.f);
}

TEST(Tensor, FromValuesChecksSize) {
  EXPECT_NO_THROW(Tensor::from_values({2, 2}, {1, 2, 3, 4}));
  EXPECT_THROW(Tensor::from_values({2, 2}, {1, 2, 3}), std::invalid_argument);
}

TEST(Tensor, CopySharesStorageCloneDoesNot) {
  Tensor a({3});
  Tensor b = a;  // shallow
  Tensor c = a.clone();
  a.at(0) = 7.f;
  EXPECT_EQ(b.at(0), 7.f);
  EXPECT_EQ(c.at(0), 0.f);
  EXPECT_TRUE(a.shares_storage_with(b));
  EXPECT_FALSE(a.shares_storage_with(c));
}

TEST(Tensor, ReshapeSharesStorageAndChecksNumel) {
  Tensor a({2, 6});
  Tensor b = a.reshape({3, 4});
  EXPECT_TRUE(a.shares_storage_with(b));
  EXPECT_EQ(b.shape(), (Shape{3, 4}));
  EXPECT_THROW(a.reshape({5, 2}), std::invalid_argument);
}

TEST(Tensor, MultiDimIndexing) {
  Tensor t({2, 3, 4, 5});
  t.at(1, 2, 3, 4) = 9.f;
  // Flat offset of [1,2,3,4] in a [2,3,4,5] tensor.
  EXPECT_EQ(t.data()[((1 * 3 + 2) * 4 + 3) * 5 + 4], 9.f);
}

TEST(Tensor, RandnStatistics) {
  Rng rng(42);
  Tensor t = Tensor::randn({10000}, rng, 1.f, 2.f);
  const double mean = sum(t.span()) / 10000.0;
  double var = 0;
  for (float v : t.span()) var += (v - mean) * (v - mean);
  var /= 10000.0;
  EXPECT_NEAR(mean, 1.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(Tensor, RandUniformRange) {
  Rng rng(7);
  Tensor t = Tensor::rand_uniform({1000}, rng, -2.f, 3.f);
  for (float v : t.span()) {
    EXPECT_GE(v, -2.f);
    EXPECT_LT(v, 3.f);
  }
}

TEST(Rng, Deterministic) {
  Rng a(5), b(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, ForkDecorrelates) {
  Rng a(5);
  Rng child = a.fork();
  // Child stream differs from the parent's continuation.
  EXPECT_NE(child.next_u64(), a.next_u64());
}

TEST(Rng, UniformIntBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.uniform_int(17), 17u);
  }
}

// --- GEMM vs naive reference ---------------------------------------------

void naive_gemm_nn(std::int64_t m, std::int64_t n, std::int64_t k, const float* a,
                   const float* b, float* c) {
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0;
      for (std::int64_t p = 0; p < k; ++p) acc += double(a[i * k + p]) * b[p * n + j];
      c[i * n + j] = float(acc);
    }
  }
}

struct GemmDims {
  std::int64_t m, n, k;
};

class GemmTest : public ::testing::TestWithParam<GemmDims> {};

TEST_P(GemmTest, NNMatchesNaive) {
  const auto [m, n, k] = GetParam();
  Rng rng(m * 100 + n * 10 + k);
  Tensor a = Tensor::randn({m, k}, rng);
  Tensor b = Tensor::randn({k, n}, rng);
  Tensor c({m, n}), ref({m, n});
  gemm_nn(exec::ExecContext::serial(), m, n, k, 1.f, a.data(), b.data(), 0.f,
          c.data());
  naive_gemm_nn(m, n, k, a.data(), b.data(), ref.data());
  for (std::int64_t i = 0; i < m * n; ++i) {
    EXPECT_NEAR(c.data()[i], ref.data()[i], 1e-3f) << "at " << i;
  }
}

TEST_P(GemmTest, NTMatchesNaive) {
  const auto [m, n, k] = GetParam();
  Rng rng(m + n + k);
  Tensor a = Tensor::randn({m, k}, rng);
  Tensor bt = Tensor::randn({n, k}, rng);
  // Reference: transpose bt then naive NN.
  Tensor b({k, n});
  for (std::int64_t p = 0; p < k; ++p)
    for (std::int64_t j = 0; j < n; ++j) b.at(p, j) = bt.at(j, p);
  Tensor c({m, n}), ref({m, n});
  gemm_nt(exec::ExecContext::serial(), m, n, k, 1.f, a.data(), bt.data(), 0.f,
          c.data());
  naive_gemm_nn(m, n, k, a.data(), b.data(), ref.data());
  for (std::int64_t i = 0; i < m * n; ++i) EXPECT_NEAR(c.data()[i], ref.data()[i], 1e-3f);
}

TEST_P(GemmTest, TNMatchesNaive) {
  const auto [m, n, k] = GetParam();
  Rng rng(3 * m + 5 * n + 7 * k);
  Tensor at = Tensor::randn({k, m}, rng);
  Tensor b = Tensor::randn({k, n}, rng);
  Tensor a({m, k});
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t p = 0; p < k; ++p) a.at(i, p) = at.at(p, i);
  Tensor c({m, n}), ref({m, n});
  gemm_tn(exec::ExecContext::serial(), m, n, k, 1.f, at.data(), b.data(), 0.f,
          c.data());
  naive_gemm_nn(m, n, k, a.data(), b.data(), ref.data());
  for (std::int64_t i = 0; i < m * n; ++i) EXPECT_NEAR(c.data()[i], ref.data()[i], 1e-3f);
}

TEST_P(GemmTest, AccumulateBetaOne) {
  const auto [m, n, k] = GetParam();
  Rng rng(9);
  Tensor a = Tensor::randn({m, k}, rng);
  Tensor b = Tensor::randn({k, n}, rng);
  Tensor c = Tensor::full({m, n}, 1.f);
  Tensor ref({m, n});
  naive_gemm_nn(m, n, k, a.data(), b.data(), ref.data());
  gemm_nn(exec::ExecContext::serial(), m, n, k, 1.f, a.data(), b.data(), 1.f,
          c.data());
  for (std::int64_t i = 0; i < m * n; ++i) {
    EXPECT_NEAR(c.data()[i], ref.data()[i] + 1.f, 1e-3f);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, GemmTest,
                         ::testing::Values(GemmDims{1, 1, 1}, GemmDims{3, 5, 7},
                                           GemmDims{16, 16, 16}, GemmDims{65, 33, 17},
                                           GemmDims{128, 64, 300},
                                           GemmDims{7, 130, 70}));

// --- BLAS-1 helpers --------------------------------------------------------

TEST(Ops, Axpy) {
  Tensor x = Tensor::from_values({3}, {1, 2, 3});
  Tensor y = Tensor::from_values({3}, {10, 20, 30});
  axpy(2.f, x.span(), y.span());
  EXPECT_EQ(y.at(0), 12.f);
  EXPECT_EQ(y.at(1), 24.f);
  EXPECT_EQ(y.at(2), 36.f);
}

TEST(Ops, ScaleAndAdd) {
  Tensor x = Tensor::from_values({2}, {2, 4});
  scale(0.5f, x.span());
  EXPECT_EQ(x.at(0), 1.f);
  Tensor a = Tensor::from_values({2}, {1, 2});
  Tensor out({2});
  add(x.span(), a.span(), out.span());
  EXPECT_EQ(out.at(0), 2.f);
  EXPECT_EQ(out.at(1), 4.f);
}

TEST(Ops, Reductions) {
  Tensor x = Tensor::from_values({4}, {1, -2, 3, -0.5f});
  EXPECT_DOUBLE_EQ(sum(x.span()), 1.5);
  EXPECT_NEAR(sum_sq(x.span()), 1 + 4 + 9 + 0.25, 1e-9);
  EXPECT_EQ(max_abs(x.span()), 3.f);
  EXPECT_EQ(count_below(x.span(), 1.f), 2);  // |1| and |-0.5|
}

TEST(Ops, ReluForwardBackward) {
  Tensor x = Tensor::from_values({4}, {-1, 0, 2, -3});
  Tensor y({4});
  relu(x.span(), y.span());
  EXPECT_EQ(y.at(0), 0.f);
  EXPECT_EQ(y.at(2), 2.f);
  Tensor dy = Tensor::full({4}, 1.f);
  Tensor dx({4});
  relu_backward(x.span(), dy.span(), dx.span());
  EXPECT_EQ(dx.at(0), 0.f);
  EXPECT_EQ(dx.at(1), 0.f);  // x == 0 -> gradient 0 by convention
  EXPECT_EQ(dx.at(2), 1.f);
}

// --- im2col / col2im -------------------------------------------------------

TEST(Im2col, KnownSmallCase) {
  // 1 channel, 3x3 input, 2x2 kernel, stride 1, no pad -> 4 rows x 4 cols.
  ConvGeom g{1, 3, 3, 2, 1, 0};
  Tensor x = Tensor::from_values({1, 3, 3}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  ASSERT_EQ(g.col_rows(), 4);
  ASSERT_EQ(g.col_cols(), 4);
  Tensor col({4, 4});
  im2col(g, x.data(), col.data());
  // Row 0 = kernel offset (0,0): top-left of each receptive field.
  EXPECT_EQ(col.at(0, 0), 1.f);
  EXPECT_EQ(col.at(0, 1), 2.f);
  EXPECT_EQ(col.at(0, 2), 4.f);
  EXPECT_EQ(col.at(0, 3), 5.f);
  // Row 3 = offset (1,1): bottom-right of each field.
  EXPECT_EQ(col.at(3, 0), 5.f);
  EXPECT_EQ(col.at(3, 3), 9.f);
}

TEST(Im2col, PaddingFillsZero) {
  ConvGeom g{1, 2, 2, 3, 1, 1};
  Tensor x = Tensor::from_values({1, 2, 2}, {1, 2, 3, 4});
  Tensor col({g.col_rows(), g.col_cols()});
  im2col(g, x.data(), col.data());
  // Offset (0,0) of output (0,0) reads input (-1,-1) -> 0.
  EXPECT_EQ(col.at(0, 0), 0.f);
  // Offset (1,1) of output (0,0) reads input (0,0) -> 1.
  EXPECT_EQ(col.at(4, 0), 1.f);
}

struct ConvGeomCase {
  std::int64_t c, h, w, k, s, p;
};

class Im2colAdjointTest : public ::testing::TestWithParam<ConvGeomCase> {};

// <im2col(x), y> == <x, col2im(y)> for all x, y: the defining property of an
// adjoint pair, which is exactly what conv backward relies on.
TEST_P(Im2colAdjointTest, AdjointProperty) {
  const auto [c, h, w, k, s, p] = GetParam();
  ConvGeom g{c, h, w, k, s, p};
  Rng rng(c * 1000 + h * 100 + k);
  Tensor x = Tensor::randn({c, h, w}, rng);
  Tensor y = Tensor::randn({g.col_rows(), g.col_cols()}, rng);
  Tensor col({g.col_rows(), g.col_cols()});
  im2col(g, x.data(), col.data());
  Tensor xg({c, h, w});
  col2im(g, y.data(), xg.data());
  double lhs = 0, rhs = 0;
  for (std::int64_t i = 0; i < col.numel(); ++i) {
    lhs += double(col.data()[i]) * y.data()[i];
  }
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    rhs += double(x.data()[i]) * xg.data()[i];
  }
  EXPECT_NEAR(lhs, rhs, 1e-2 * std::max(1.0, std::fabs(lhs)));
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, Im2colAdjointTest,
    ::testing::Values(ConvGeomCase{1, 4, 4, 3, 1, 1}, ConvGeomCase{3, 8, 8, 3, 1, 1},
                      ConvGeomCase{2, 8, 8, 3, 2, 1}, ConvGeomCase{4, 5, 7, 1, 1, 0},
                      ConvGeomCase{2, 9, 9, 5, 2, 2}, ConvGeomCase{1, 6, 6, 7, 1, 3},
                      ConvGeomCase{3, 16, 16, 3, 2, 1}));

TEST(Im2col, GeometryFormulas) {
  ConvGeom g{8, 32, 32, 3, 2, 1};
  EXPECT_EQ(g.out_h(), 16);
  EXPECT_EQ(g.out_w(), 16);
  EXPECT_EQ(g.col_rows(), 72);
  EXPECT_EQ(g.col_cols(), 256);
}

}  // namespace
}  // namespace pt
