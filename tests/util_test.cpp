// Utility tests: table rendering/CSV escaping, CLI flag parsing, logging
// levels, timers.
#include <gtest/gtest.h>

#include <fstream>

#include "util/cli.h"
#include "util/logging.h"
#include "util/table.h"

namespace pt {
namespace {

TEST(Table, RendersAlignedText) {
  Table t({"model", "flops"});
  t.add_row({"resnet50", "123.4"});
  const std::string text = t.to_text();
  EXPECT_NE(text.find("model"), std::string::npos);
  EXPECT_NE(text.find("resnet50"), std::string::npos);
  EXPECT_NE(text.find("---"), std::string::npos);
}

TEST(Table, ArityChecked) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, NumericRows) {
  Table t({"x", "y"});
  t.add_row_numeric({1.23456, 2.0}, 2);
  EXPECT_EQ(t.rows()[0][0], "1.23");
  EXPECT_EQ(t.rows()[0][1], "2.00");
}

TEST(Table, CsvEscapesSpecials) {
  Table t({"name"});
  t.add_row({"a,b"});
  t.add_row({"q\"uote"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"q\"\"uote\""), std::string::npos);
}

TEST(Table, WritesCsvFile) {
  Table t({"k", "v"});
  t.add_row({"x", "1"});
  const std::string path = "/tmp/pt_table_test.csv";
  t.print(path);
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "k,v");
}

TEST(Fmt, Precision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(-1.0, 0), "-1");
}

TEST(Cli, ParsesAllForms) {
  CliFlags flags;
  flags.define("alpha", "1.0", "");
  flags.define("name", "x", "");
  flags.define("quick", "false", "");
  flags.define("count", "3", "");
  const char* argv[] = {"prog", "--alpha=2.5", "--name", "model", "--quick"};
  flags.parse(5, argv);
  EXPECT_DOUBLE_EQ(flags.get_double("alpha"), 2.5);
  EXPECT_EQ(flags.get("name"), "model");
  EXPECT_TRUE(flags.get_bool("quick"));
  EXPECT_EQ(flags.get_int("count"), 3);  // default preserved
}

TEST(Cli, RejectsUnknownFlag) {
  CliFlags flags;
  flags.define("a", "1", "");
  const char* argv[] = {"prog", "--bogus", "1"};
  EXPECT_THROW(flags.parse(3, argv), std::invalid_argument);
}

TEST(Cli, HelpRequested) {
  CliFlags flags;
  flags.define("a", "1", "doc for a");
  const char* argv[] = {"prog", "--help"};
  flags.parse(2, argv);
  EXPECT_TRUE(flags.help_requested());
  EXPECT_NE(flags.usage("prog").find("doc for a"), std::string::npos);
}

TEST(Cli, UndefinedGetThrows) {
  CliFlags flags;
  EXPECT_THROW(flags.get("nope"), std::invalid_argument);
}

TEST(Cli, ListFlagAccumulatesInOrder) {
  CliFlags flags;
  flags.define_list("param", "repeatable key=value");
  flags.define("other", "x", "");
  const char* argv[] = {"prog", "--param", "a=1", "--param=b=2", "--other", "y",
                        "--param", "c=3"};
  flags.parse(8, argv);
  const std::vector<std::string> got = flags.get_list("param");
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0], "a=1");
  EXPECT_EQ(got[1], "b=2");
  EXPECT_EQ(got[2], "c=3");
  EXPECT_EQ(flags.get("other"), "y");
}

TEST(Cli, ListFlagMisuseThrows) {
  CliFlags flags;
  flags.define_list("param", "");
  flags.define("plain", "1", "");
  EXPECT_THROW(flags.get("param"), std::invalid_argument);     // is a list
  EXPECT_THROW(flags.get_list("plain"), std::invalid_argument);  // is not
  const char* argv[] = {"prog", "--param"};
  EXPECT_THROW(flags.parse(2, argv), std::invalid_argument);  // needs a value
  EXPECT_TRUE(flags.get_list("param").empty());  // default is empty
}

TEST(Logging, LevelFilters) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  log_info("should not crash (filtered)");
  set_log_level(before);
}

TEST(Timer, MeasuresElapsed) {
  Timer t;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GE(t.seconds(), 0.0);
  t.reset();
  EXPECT_LT(t.seconds(), 1.0);
}

}  // namespace
}  // namespace pt
